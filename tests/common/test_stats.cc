/**
 * @file
 * Stat / StatGroup arithmetic and lookup semantics, plus the
 * log-bucketed Histogram the serving layer reports percentiles from.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hh"

namespace hsu
{
namespace
{

TEST(Stats, ScalarArithmetic)
{
    StatGroup g;
    Stat &s = g.scalar("a.b");
    ++s;
    s += 4.0;
    s -= 2.0;
    EXPECT_DOUBLE_EQ(g.get("a.b"), 3.0);
    s -= 3.0;
    EXPECT_DOUBLE_EQ(g.get("a.b"), 0.0);
}

TEST(Stats, GetOrCreateIsStable)
{
    StatGroup g;
    Stat &a = g.scalar("x");
    Stat &b = g.scalar("x");
    EXPECT_EQ(&a, &b);
    EXPECT_FALSE(g.has("y"));
    EXPECT_DOUBLE_EQ(g.get("y"), 0.0);
}

/** Deterministic sample stream spanning several decades. */
std::vector<double>
sampleStream(std::size_t n, std::uint64_t seed)
{
    std::vector<double> out;
    out.reserve(n);
    std::uint64_t x = seed;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        // Map to [1, 1e5) with a long tail.
        const double u =
            static_cast<double>(x >> 11) / 9007199254740992.0;
        out.push_back(std::pow(10.0, 5.0 * u));
    }
    return out;
}

/** Exact nearest-rank percentile of a sample vector. */
double
oraclePercentile(std::vector<double> sorted, double p)
{
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(std::max(
        1.0,
        std::ceil(p / 100.0 * static_cast<double>(sorted.size()))));
    return sorted[rank - 1];
}

TEST(Histogram, PercentileMatchesSortedVectorOracle)
{
    Histogram h;
    const auto samples = sampleStream(5000, 99);
    for (const double v : samples)
        h.add(v);

    for (const double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
        const double exact = oraclePercentile(samples, p);
        const double est = h.percentile(p);
        // The estimate must land in (or at the clamp bounds of) the
        // bucket holding the exact order statistic.
        EXPECT_GE(est, h.bucketLo(exact)) << "p" << p;
        EXPECT_LE(est, h.bucketHi(exact)) << "p" << p;
    }
    // Extremes are exact, not bucket-resolved.
    EXPECT_DOUBLE_EQ(
        h.percentile(100.0),
        *std::max_element(samples.begin(), samples.end()));
    EXPECT_DOUBLE_EQ(h.max(),
                     *std::max_element(samples.begin(), samples.end()));
    EXPECT_DOUBLE_EQ(h.min(),
                     *std::min_element(samples.begin(), samples.end()));
}

TEST(Histogram, OrderIndependent)
{
    // Percentiles are a function of the multiset of samples, not the
    // insertion order — required for bit-identical parallel reports.
    auto samples = sampleStream(1000, 7);
    Histogram fwd;
    for (const double v : samples)
        fwd.add(v);
    Histogram rev;
    std::reverse(samples.begin(), samples.end());
    for (const double v : samples)
        rev.add(v);
    for (const double p : {50.0, 95.0, 99.0})
        EXPECT_DOUBLE_EQ(fwd.percentile(p), rev.percentile(p));
    EXPECT_DOUBLE_EQ(fwd.sum(), rev.sum());
}

TEST(Histogram, MergeEquivalentToCombinedStream)
{
    const auto a = sampleStream(700, 1);
    const auto b = sampleStream(300, 2);
    Histogram ha, hb, hall;
    for (const double v : a) {
        ha.add(v);
        hall.add(v);
    }
    for (const double v : b) {
        hb.add(v);
        hall.add(v);
    }
    ha.merge(hb);
    EXPECT_EQ(ha.count(), hall.count());
    EXPECT_DOUBLE_EQ(ha.sum(), hall.sum());
    EXPECT_DOUBLE_EQ(ha.min(), hall.min());
    EXPECT_DOUBLE_EQ(ha.max(), hall.max());
    for (const double p : {25.0, 50.0, 95.0, 99.0})
        EXPECT_DOUBLE_EQ(ha.percentile(p), hall.percentile(p));
}

TEST(Histogram, ShardMergePercentilesMatchOracle)
{
    // The cluster report folds per-shard queue-wait histograms with
    // merge() (shard/cluster.cc); pin that an N-way split-and-merge
    // still reports percentiles inside the bucket holding the exact
    // order statistic of the combined stream.
    const auto samples = sampleStream(4000, 13);
    constexpr unsigned kShards = 4;
    std::vector<Histogram> per_shard(kShards);
    for (std::size_t i = 0; i < samples.size(); ++i)
        per_shard[i % kShards].add(samples[i]);

    Histogram merged;
    for (const Histogram &h : per_shard)
        merged.merge(h);
    EXPECT_EQ(merged.count(), samples.size());

    for (const double p : {1.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
        const double exact = oraclePercentile(samples, p);
        const double est = merged.percentile(p);
        EXPECT_GE(est, merged.bucketLo(exact)) << "p" << p;
        EXPECT_LE(est, merged.bucketHi(exact)) << "p" << p;
    }
    // Exact extremes survive the merge untouched.
    EXPECT_DOUBLE_EQ(merged.max(),
                     *std::max_element(samples.begin(), samples.end()));
    EXPECT_DOUBLE_EQ(merged.min(),
                     *std::min_element(samples.begin(), samples.end()));
}

TEST(Histogram, UnderflowBucketAndEmpty)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);

    h.add(0.0);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.underflow(), 2u);
    // Ranks 1-2 are underflow (reported as 0), rank 3 is the sample.
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(h.min(), 100.0); // smallest *positive* sample

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

TEST(Histogram, SingleSampleIsExactEverywhere)
{
    Histogram h;
    h.add(123.456);
    for (const double p : {0.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 123.456);
    EXPECT_DOUBLE_EQ(h.mean(), 123.456);
}

TEST(Histogram, StatGroupRegistry)
{
    StatGroup g;
    Histogram &h = g.histogram("serve.latency");
    h.add(10.0);
    Histogram &again = g.histogram("serve.latency");
    EXPECT_EQ(&h, &again);
    ASSERT_NE(g.findHistogram("serve.latency"), nullptr);
    EXPECT_EQ(g.findHistogram("serve.latency")->count(), 1u);
    EXPECT_EQ(g.findHistogram("absent"), nullptr);
}

} // namespace
} // namespace hsu
