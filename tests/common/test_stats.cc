/**
 * @file
 * Stat / StatGroup arithmetic and lookup semantics.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace hsu
{
namespace
{

TEST(Stats, ScalarArithmetic)
{
    StatGroup g;
    Stat &s = g.scalar("a.b");
    ++s;
    s += 4.0;
    s -= 2.0;
    EXPECT_DOUBLE_EQ(g.get("a.b"), 3.0);
    s -= 3.0;
    EXPECT_DOUBLE_EQ(g.get("a.b"), 0.0);
}

TEST(Stats, GetOrCreateIsStable)
{
    StatGroup g;
    Stat &a = g.scalar("x");
    Stat &b = g.scalar("x");
    EXPECT_EQ(&a, &b);
    EXPECT_FALSE(g.has("y"));
    EXPECT_DOUBLE_EQ(g.get("y"), 0.0);
}

} // namespace
} // namespace hsu
