/**
 * @file
 * TickTeam barrier semantics: chunk coverage, cross-round visibility,
 * inline degeneration, and exception propagation. The simulator clamps
 * its team to the hardware concurrency, so this test pins the threaded
 * path even on machines where the horizon loop runs inline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/tickteam.hh"

namespace hsu
{
namespace
{

TEST(TickTeam, CoversEveryIndexExactlyOnce)
{
    TickTeam team(4);
    EXPECT_EQ(team.numThreads(), 4u);
    std::vector<std::atomic<int>> hits(37);
    team.run([&hits](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    }, hits.size());
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(TickTeam, RoundsAreOrderedAndWritesVisible)
{
    // Worker writes from round N must be readable by every thread in
    // round N+1 without extra synchronization (the run() barrier is
    // the only fence the simulator uses between phases).
    TickTeam team(3);
    std::vector<std::uint64_t> cells(16, 0);
    for (int round = 0; round < 200; ++round) {
        team.run([&cells, round](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                EXPECT_EQ(cells[i], static_cast<std::uint64_t>(round));
                ++cells[i];
            }
        }, cells.size());
    }
    for (const auto c : cells)
        EXPECT_EQ(c, 200u);
}

TEST(TickTeam, SmallCountsLeaveWorkersIdle)
{
    // count < threads: trailing chunks are empty, nothing deadlocks.
    TickTeam team(4);
    std::vector<std::atomic<int>> hits(2);
    team.run([&hits](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    }, hits.size());
    EXPECT_EQ(hits[0].load(), 1);
    EXPECT_EQ(hits[1].load(), 1);
}

TEST(TickTeam, SingleThreadRunsInline)
{
    TickTeam team(1);
    EXPECT_EQ(team.numThreads(), 1u);
    int calls = 0;
    team.run([&calls](std::size_t b, std::size_t e) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 5u);
        ++calls;
    }, 5);
    EXPECT_EQ(calls, 1);
    team.run([](std::size_t, std::size_t) { FAIL(); }, 0);
}

TEST(TickTeam, ExceptionsPropagateAndTeamSurvives)
{
    TickTeam team(4);
    EXPECT_THROW(
        team.run([](std::size_t b, std::size_t) {
            if (b == 0)
                throw std::runtime_error("chunk failed");
        }, 8),
        std::runtime_error);
    // The team must still run later rounds.
    std::atomic<int> total{0};
    team.run([&total](std::size_t b, std::size_t e) {
        total.fetch_add(static_cast<int>(e - b),
                        std::memory_order_relaxed);
    }, 8);
    EXPECT_EQ(total.load(), 8);
}

} // namespace
} // namespace hsu
