/**
 * @file
 * Contract-macro semantics and the nondeterminism-source registry.
 *
 * The exactly-once guarantees are pinned at compile time: each macro's
 * condition is a `++i` inside a constexpr function, and static_asserts
 * record how often it ran per build flavor (once when the check is
 * active, zero when compiled out — HSU_DETAIL_UNEVALUATED must not
 * evaluate side effects). A double evaluation fails the build, not a
 * test run.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "mem/cache.hh"
#include "rtunit/rtunit.hh"
#include "search/ggnn.hh"
#include "search/runner.hh"
#include "sim/gpu.hh"
#include "structures/graph.hh"

#include "../test_util.hh"

namespace hsu
{
namespace
{

// --- Exactly-once / never evaluation, pinned at compile time ---------

constexpr int
assertEvals()
{
    int i = 0;
    hsu_assert(++i > 0, "side effect must run exactly once");
    return i;
}
static_assert(assertEvals() == 1,
              "hsu_assert must evaluate its condition exactly once");

constexpr int
debugAssertEvals()
{
    int i = 0;
    hsu_debug_assert(++i > 0, "hot-loop check");
    return i;
}
#ifdef NDEBUG
static_assert(debugAssertEvals() == 0,
              "hsu_debug_assert must not evaluate under NDEBUG");
#else
static_assert(debugAssertEvals() == 1,
              "hsu_debug_assert must evaluate exactly once in debug");
#endif

constexpr int
contractEvals()
{
    int i = 0;
    hsu_contract(++i > 0, "ordering discipline");
    return i;
}
#ifdef HSU_AUDIT
static_assert(contractEvals() == 1,
              "hsu_contract must evaluate exactly once under HSU_AUDIT");
static_assert(audit::enabled());
#else
static_assert(contractEvals() == 0,
              "hsu_contract must not evaluate outside HSU_AUDIT");
static_assert(!audit::enabled());
#endif

TEST(Contract, AssertEvaluatesExactlyOnceAtRuntime)
{
    int i = 0;
    hsu_assert(++i == 1, "i = ", i);
    EXPECT_EQ(i, 1);
}

TEST(Contract, DebugAssertMatchesBuildFlavor)
{
    int i = 0;
    hsu_debug_assert(++i == 1, "i = ", i);
#ifdef NDEBUG
    EXPECT_EQ(i, 0);
#else
    EXPECT_EQ(i, 1);
#endif
}

TEST(Contract, ContractMatchesBuildFlavor)
{
    int i = 0;
    hsu_contract(++i == 1, "i = ", i);
#ifdef HSU_AUDIT
    EXPECT_EQ(i, 1);
#else
    EXPECT_EQ(i, 0);
#endif
}

TEST(ContractDeathTest, AssertPanicsOnViolation)
{
    EXPECT_DEATH(hsu_assert(1 == 2, "forced failure"),
                 "assertion failed");
}

#ifdef HSU_AUDIT
TEST(ContractDeathTest, ContractPanicsOnViolationUnderAudit)
{
    EXPECT_DEATH(hsu_contract(1 == 2, "forced failure"),
                 "contract violated");
}
#endif

// --- Nondeterminism-source registry ----------------------------------

/**
 * Registrations run in static initializers of the TUs that own the
 * sources. With static libraries the linker only pulls a TU into the
 * binary when something references its symbols, so each expected site's
 * owning TU is referenced here before the registry is inspected.
 */
void
forceLinkage()
{
    Rng rng(1);                                  // rng.cc
    (void)rng.next();
    (void)quickScale();                          // runner.cc
    StatGroup stats;
    Cache l1(CacheParams{}, stats);              // cache.cc
    RtUnit rtu(RtUnitParams{}, l1, stats);       // rtunit.cc
    const PointSet pts = test::randomCloud(64, 4, 7);
    const HnswGraph g =
        HnswGraph::build(pts, Metric::Euclidean); // graph.cc
    const GgnnKernel kernel(g, GgnnConfig{});     // ggnn.cc
    (void)kernel;
    GpuConfig cfg;                               // gpu.cc
    cfg.numSms = 1;
    StatGroup gpu_stats;
    (void)simulateKernel(cfg, KernelTrace{}, gpu_stats);
}

TEST(AuditRegistry, KnownSourcesAreRegistered)
{
    forceLinkage();
    const char *expected[] = {
        "rng.cc:Rng",
        "rng.cc:deriveSeed",
        "cache.cc:mshr_",
        "rtunit.cc:pendingLines_",
        "ggnn.cc:visited",
        "graph.cc:visited",
        "runner.cc:runJobsParallel",
        "gpu.cc:mergeSmStats",
    };
    for (const char *site : expected)
        EXPECT_TRUE(audit::hasSource(site)) << site;
}

TEST(AuditRegistry, EverySourceNamesItsDiscipline)
{
    forceLinkage();
    EXPECT_FALSE(audit::sources().empty());
    for (const audit::NondetSource &s : audit::sources()) {
        ASSERT_NE(s.site, nullptr);
        ASSERT_NE(s.discipline, nullptr);
        EXPECT_NE(s.discipline[0], '\0') << s.site;
    }
}

TEST(AuditRegistry, SourcesOfKindFilters)
{
    forceLinkage();
    for (const audit::NondetSource &s :
         audit::sourcesOfKind(audit::NondetKind::Rng)) {
        EXPECT_EQ(static_cast<int>(s.kind),
                  static_cast<int>(audit::NondetKind::Rng));
    }
    EXPECT_FALSE(
        audit::sourcesOfKind(audit::NondetKind::UnorderedIteration)
            .empty());
}

TEST(AuditRegistry, UseCountsAccumulate)
{
    const std::size_t id = audit::registerNondetSource(
        audit::NondetKind::FloatAccumulation, "test_contract.cc:probe",
        "test-only source; never feeds simulator output");
    EXPECT_EQ(audit::useCount(id), 0u);
    audit::noteUse(id);
    audit::noteUse(id);
    EXPECT_EQ(audit::useCount(id), 2u);
}

TEST(AuditRegistry, OrderedKeysSortsUnorderedContainers)
{
    std::unordered_map<int, int> m{{3, 0}, {1, 0}, {2, 0}};
    EXPECT_EQ(audit::orderedKeys(m), (std::vector<int>{1, 2, 3}));
    std::unordered_set<int> s{9, 4, 6};
    EXPECT_EQ(audit::orderedKeys(s), (std::vector<int>{4, 6, 9}));
}

} // namespace
} // namespace hsu
