/**
 * @file
 * deriveSeed contract: pinned values (the sharded partitioner, arrival
 * generators, and every other consumer depend on these exact outputs
 * for cross-version reproducibility), full-avalanche distinctness, and
 * the absence of the classic seed+i aliasing that motivated it.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace hsu
{
namespace
{

TEST(DeriveSeed, PinnedValues)
{
    // Changing any of these silently reshuffles every derived RNG
    // stream in the repo (hash partitioning included) — bump them only
    // with a deliberate, documented seed-schema migration.
    EXPECT_EQ(deriveSeed(0, 0), 0x6187aa822d330dddULL);
    EXPECT_EQ(deriveSeed(0, 1), 0x8d2a7797fdcd6e7dULL);
    EXPECT_EQ(deriveSeed(1, 0), 0xe28bcbef317bfe85ULL);
    EXPECT_EQ(deriveSeed(0xdeadbeefULL, 7), 0x73e8725112767c06ULL);
    EXPECT_EQ(deriveSeed(42, 0xffffffffffffffffULL),
              0xba825d03327096d3ULL);
}

TEST(DeriveSeed, NoAdjacentRootAliasing)
{
    // Naive seed+i schemes collide: (root, i) == (root+1, i-1). The
    // double-avalanche derivation must not.
    for (std::uint64_t root = 0; root < 64; ++root) {
        for (std::uint64_t i = 1; i < 64; ++i) {
            EXPECT_NE(deriveSeed(root, i), deriveSeed(root + 1, i - 1))
                << "root=" << root << " i=" << i;
        }
    }
}

TEST(DeriveSeed, ChildFamiliesAreDistinct)
{
    // 64 roots x 64 streams: all 4096 derived seeds unique.
    std::set<std::uint64_t> seen;
    for (std::uint64_t root = 0; root < 64; ++root)
        for (std::uint64_t i = 0; i < 64; ++i)
            EXPECT_TRUE(seen.insert(deriveSeed(root, i)).second)
                << "collision at root=" << root << " i=" << i;
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(DeriveSeed, PureFunction)
{
    EXPECT_EQ(deriveSeed(123, 456), deriveSeed(123, 456));
}

} // namespace
} // namespace hsu
