/**
 * @file
 * HSU instruction-word encoding tests: field round-trips, invalid-word
 * rejection, disassembly, and multi-beat sequence assembly.
 */

#include <gtest/gtest.h>

#include "hsu/encoding.hh"

namespace hsu
{
namespace
{

TEST(Encoding, RoundTripsAllOpcodes)
{
    for (const HsuOpcode op :
         {HsuOpcode::RayIntersect, HsuOpcode::PointEuclid,
          HsuOpcode::PointAngular, HsuOpcode::KeyCompare}) {
        HsuInstrFields f;
        f.opcode = op;
        f.accumulate = op == HsuOpcode::PointEuclid;
        f.dstReg = 12;
        f.srcReg = 34;
        f.count = op == HsuOpcode::KeyCompare ? 36 : 0;
        f.imm = 0xdeadbeef;
        f.nodeAddr = 0xabcdef012345ull;
        const HsuInstrWord w = encodeInstr(f);
        const auto back = decodeInstr(w);
        ASSERT_TRUE(back.has_value()) << toString(op);
        EXPECT_EQ(*back, f) << toString(op);
    }
}

TEST(Encoding, FieldIsolation)
{
    // Changing one field must not disturb the others.
    HsuInstrFields f;
    f.opcode = HsuOpcode::PointAngular;
    f.nodeAddr = 0x1000;
    const HsuInstrWord base = encodeInstr(f);
    f.dstReg = 200;
    const HsuInstrWord changed = encodeInstr(f);
    EXPECT_NE(base, changed);
    const auto d = decodeInstr(changed);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->nodeAddr, 0x1000u);
    EXPECT_EQ(d->dstReg, 200);
    EXPECT_EQ(d->opcode, HsuOpcode::PointAngular);
}

TEST(Encoding, RejectsMalformedWords)
{
    // Bad opcode.
    HsuInstrWord w;
    w.word0 = 0x3f;
    EXPECT_FALSE(decodeInstr(w).has_value());
    // Reserved bit set.
    w.word0 = 0x80;
    EXPECT_FALSE(decodeInstr(w).has_value());
    // Reserved high node-address bits.
    w.word0 = 0;
    w.word1 = 1ull << 60;
    EXPECT_FALSE(decodeInstr(w).has_value());
    // Accumulate on a non-distance instruction.
    HsuInstrFields f;
    f.opcode = HsuOpcode::RayIntersect;
    HsuInstrWord ok = encodeInstr(f);
    ok.word0 |= 1u << 6;
    EXPECT_FALSE(decodeInstr(ok).has_value());
    // Separator count out of range.
    HsuInstrWord kc = encodeInstr({HsuOpcode::KeyCompare, false, 0, 0,
                                   36, 0, 0});
    kc.word0 = (kc.word0 & ~(0xffull << 24)) | (37ull << 24);
    EXPECT_FALSE(decodeInstr(kc).has_value());
}

TEST(Encoding, EncodePanicsOnBadFields)
{
    HsuInstrFields f;
    f.nodeAddr = 1ull << 48;
    EXPECT_DEATH(encodeInstr(f), "48 bits");
    HsuInstrFields g;
    g.count = 37;
    EXPECT_DEATH(encodeInstr(g), "36");
}

TEST(Encoding, Disassembly)
{
    HsuInstrFields f;
    f.opcode = HsuOpcode::PointEuclid;
    f.accumulate = true;
    f.dstReg = 4;
    f.srcReg = 8;
    f.nodeAddr = 0x40;
    const std::string s = disassemble(encodeInstr(f));
    EXPECT_NE(s.find("POINT_EUCLID.acc"), std::string::npos) << s;
    EXPECT_NE(s.find("r4"), std::string::npos);
    EXPECT_NE(s.find("0x40"), std::string::npos);
    EXPECT_EQ(disassemble(HsuInstrWord{0x3f, 0}), "<invalid>");
}

TEST(Encoding, DistanceSequencePaperExample)
{
    // Section IV-F: dim 65 angular -> 9 instructions, first 8 with the
    // accumulate bit, the last without.
    const auto seq = encodeDistanceSequence(HsuOpcode::PointAngular, 65,
                                            0x2000, 4, 8);
    ASSERT_EQ(seq.size(), 9u);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const auto f = decodeInstr(seq[i]);
        ASSERT_TRUE(f);
        EXPECT_EQ(f->accumulate, i + 1 < seq.size()) << i;
        EXPECT_EQ(f->opcode, HsuOpcode::PointAngular);
        // Node pointer advances by the 32B angular beat fetch.
        EXPECT_EQ(f->nodeAddr, 0x2000u + i * 32);
        EXPECT_EQ(f->imm, 65u);
    }
}

TEST(Encoding, SingleBeatSequenceHasNoAccumulate)
{
    const auto seq =
        encodeDistanceSequence(HsuOpcode::PointEuclid, 16, 0x100, 0, 0);
    ASSERT_EQ(seq.size(), 1u);
    EXPECT_FALSE(decodeInstr(seq[0])->accumulate);
}

} // namespace
} // namespace hsu
