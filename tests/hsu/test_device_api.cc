/**
 * @file
 * The HSU device-library intrinsics: multi-beat lowering must be
 * numerically identical to the direct computation for every dimension,
 * and the emitted instruction counts must follow ceil(n / width).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "hsu/device_api.hh"

namespace hsu
{
namespace
{

std::vector<float>
randomVec(unsigned n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.gaussian();
    return v;
}

float
refEuclid(const float *a, const float *b, unsigned n)
{
    float s = 0;
    for (unsigned i = 0; i < n; ++i)
        s += (a[i] - b[i]) * (a[i] - b[i]);
    return s;
}

/** Dimension sweep covering beat boundaries of both modes. */
class DeviceApiDims : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DeviceApiDims, EuclidMatchesReference)
{
    const unsigned n = GetParam();
    const auto a = randomVec(n, n * 2 + 1);
    const auto b = randomVec(n, n * 2 + 2);
    const float got = euclidDist(a.data(), b.data(), n);
    const float want = refEuclid(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, 1e-4f * std::max(1.0f, want));
}

TEST_P(DeviceApiDims, AngularRawMatchesReference)
{
    const unsigned n = GetParam();
    const auto a = randomVec(n, n * 3 + 1);
    const auto b = randomVec(n, n * 3 + 2);
    const AngularDistResult got = angularDistRaw(a.data(), b.data(), n);
    float dot = 0, norm = 0;
    for (unsigned i = 0; i < n; ++i) {
        dot += a[i] * b[i];
        norm += b[i] * b[i];
    }
    EXPECT_NEAR(got.dotSum, dot, 1e-3f * std::max(1.0f, std::fabs(dot)));
    EXPECT_NEAR(got.normSum, norm, 1e-3f * norm);
}

TEST_P(DeviceApiDims, InstructionCounts)
{
    const unsigned n = GetParam();
    const DatapathConfig dp;
    EXPECT_EQ(euclidInstrCount(n, dp), (n + 15) / 16);
    EXPECT_EQ(angularInstrCount(n, dp), (n + 7) / 8);
}

INSTANTIATE_TEST_SUITE_P(
    DimSweep, DeviceApiDims,
    ::testing::Values(1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u,
                      33u, 64u, 65u, 96u, 127u, 128u, 200u, 256u, 784u,
                      960u));

TEST(DeviceApi, PaperExampleDim65Angular)
{
    // Section IV-F: "9 instructions would be generated for an angular
    // distance test on a point with a dimension of 65".
    EXPECT_EQ(angularInstrCount(65), 9u);
}

TEST(DeviceApi, AngularDistCosineIdentity)
{
    // angular distance of a vector with itself is ~0; with its negation
    // it is ~2.
    const auto a = randomVec(40, 7);
    const float qn = norm2(a.data(), 40);
    EXPECT_NEAR(angularDist(a.data(), a.data(), 40, qn), 0.0f, 1e-4f);
    auto neg = a;
    for (auto &x : neg)
        x = -x;
    EXPECT_NEAR(angularDist(a.data(), neg.data(), 40, qn), 2.0f, 1e-4f);
}

TEST(DeviceApi, AngularZeroVectorSafe)
{
    const auto a = randomVec(8, 8);
    const std::vector<float> zero(8, 0.0f);
    EXPECT_FLOAT_EQ(
        angularDist(a.data(), zero.data(), 8, norm2(a.data(), 8)), 1.0f);
}

TEST(DeviceApi, WidthConfigChangesBeats)
{
    DatapathConfig dp;
    dp.euclidWidth = 32;
    EXPECT_EQ(dp.angularWidth(), 16u);
    EXPECT_EQ(euclidInstrCount(128, dp), 4u);
    EXPECT_EQ(angularInstrCount(128, dp), 8u);
    // Results unchanged by width.
    const auto a = randomVec(128, 9), b = randomVec(128, 10);
    EXPECT_NEAR(euclidDist(a.data(), b.data(), 128, dp),
                euclidDist(a.data(), b.data(), 128, DatapathConfig{}),
                1e-2f);
}

TEST(DeviceApi, BytesPerBeat)
{
    const DatapathConfig dp;
    EXPECT_EQ(dp.bytesPerBeat(HsuMode::Euclid), 64u);
    EXPECT_EQ(dp.bytesPerBeat(HsuMode::Angular), 32u);
    EXPECT_EQ(dp.bytesPerBeat(HsuMode::KeyCompare), 144u);
    EXPECT_EQ(dp.bytesPerBeat(HsuMode::RayBox), 128u);
    EXPECT_EQ(dp.bytesPerBeat(HsuMode::RayTri), 48u);
}

} // namespace
} // namespace hsu
