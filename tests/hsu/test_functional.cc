/**
 * @file
 * Functional semantics of the HSU instructions (Table I): distance
 * partials, the multi-beat accumulator, key compares, and the box-node
 * closest-hit sort.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "hsu/functional.hh"

namespace hsu
{
namespace
{

TEST(EuclidPartial, MatchesReference)
{
    const float a[4] = {1, 2, 3, 4};
    const float b[4] = {2, 0, 3, 8};
    EXPECT_FLOAT_EQ(euclidPartial(a, b, 4), 1 + 4 + 0 + 16);
    EXPECT_FLOAT_EQ(euclidPartial(a, b, 1), 1.0f);
    EXPECT_FLOAT_EQ(euclidPartial(a, a, 4), 0.0f);
}

TEST(AngularPartial, MatchesReference)
{
    const float q[3] = {1, 0, 2};
    const float c[3] = {3, 4, 5};
    const AngularPartial p = angularPartial(q, c, 3);
    EXPECT_FLOAT_EQ(p.dotSum, 3 + 0 + 10);
    EXPECT_FLOAT_EQ(p.normSum, 9 + 16 + 25);
}

TEST(DistanceAccumulator, EuclidMultiBeat)
{
    DistanceAccumulator acc;
    EXPECT_FLOAT_EQ(acc.feedEuclid(1.5f, true), 0.0f);
    EXPECT_TRUE(acc.open());
    EXPECT_FLOAT_EQ(acc.feedEuclid(2.5f, true), 0.0f);
    EXPECT_FLOAT_EQ(acc.feedEuclid(1.0f, false), 5.0f);
    EXPECT_FALSE(acc.open());
    // Accumulator resets after the final beat.
    EXPECT_FLOAT_EQ(acc.feedEuclid(7.0f, false), 7.0f);
}

TEST(DistanceAccumulator, AngularMultiBeat)
{
    DistanceAccumulator acc;
    acc.feedAngular({1.0f, 2.0f}, true);
    const AngularPartial total = acc.feedAngular({3.0f, 4.0f}, false);
    EXPECT_FLOAT_EQ(total.dotSum, 4.0f);
    EXPECT_FLOAT_EQ(total.normSum, 6.0f);
    EXPECT_FALSE(acc.open());
}

TEST(KeyCompare, BitVectorSemantics)
{
    const std::uint32_t seps[5] = {10, 20, 30, 40, 50};
    // Bit i is 1 iff key >= seps[i] (Table I).
    EXPECT_EQ(keyCompare(5, seps, 5), 0b00000ull);
    EXPECT_EQ(keyCompare(10, seps, 5), 0b00001ull);
    EXPECT_EQ(keyCompare(25, seps, 5), 0b00011ull);
    EXPECT_EQ(keyCompare(50, seps, 5), 0b11111ull);
    EXPECT_EQ(keyCompare(1000, seps, 5), 0b11111ull);
}

TEST(KeyCompare, Full36Wide)
{
    std::uint32_t seps[36];
    for (unsigned i = 0; i < 36; ++i)
        seps[i] = (i + 1) * 10;
    EXPECT_EQ(keyCompare(360, seps, 36), (1ull << 36) - 1);
    EXPECT_EQ(keyCompare(0, seps, 36), 0ull);
    // Popcount of the result is the child slot.
    for (unsigned i = 0; i < 36; ++i) {
        const std::uint64_t bits = keyCompare((i + 1) * 10, seps, 36);
        EXPECT_EQ(static_cast<unsigned>(__builtin_popcountll(bits)),
                  i + 1);
    }
}

TEST(KeyCompare, TooManySeparatorsPanics)
{
    std::uint32_t seps[37] = {};
    EXPECT_DEATH(keyCompare(0, seps, 37), "at most 36");
}

PreparedRay
axisRay()
{
    Ray r;
    r.origin = {0, 0, 0};
    r.dir = {1, 0, 0};
    return PreparedRay(r);
}

TEST(RayIntersectBox, SortsByClosestHit)
{
    BoxNode4 node;
    // Children at x = 6, 2, 4 (and one miss).
    node.bounds[0] = Aabb::centered({6, 0, 0}, 0.5f);
    node.bounds[1] = Aabb::centered({2, 0, 0}, 0.5f);
    node.bounds[2] = Aabb::centered({4, 0, 0}, 0.5f);
    node.bounds[3] = Aabb::centered({0, 10, 0}, 0.5f);
    for (unsigned i = 0; i < 4; ++i)
        node.child[i] = 100 + i;

    const BoxIntersectResult r = rayIntersectBox(axisRay(), node);
    EXPECT_EQ(r.hits, 3u);
    EXPECT_EQ(r.sortedChild[0], 101u);
    EXPECT_EQ(r.sortedChild[1], 102u);
    EXPECT_EQ(r.sortedChild[2], 100u);
    EXPECT_EQ(r.sortedChild[3], kInvalidNode);
    EXPECT_LE(r.tEnter[0], r.tEnter[1]);
    EXPECT_LE(r.tEnter[1], r.tEnter[2]);
}

TEST(RayIntersectBox, InvalidSlotsSkipped)
{
    BoxNode4 node;
    node.bounds[0] = Aabb::centered({3, 0, 0}, 0.5f);
    node.child[0] = 7;
    // Slots 1-3 invalid by default.
    const BoxIntersectResult r = rayIntersectBox(axisRay(), node);
    EXPECT_EQ(r.hits, 1u);
    EXPECT_EQ(r.sortedChild[0], 7u);
    EXPECT_EQ(node.arity(), 1u);
}

TEST(RayIntersectBox, AllMiss)
{
    BoxNode4 node;
    for (unsigned i = 0; i < 4; ++i) {
        node.bounds[i] = Aabb::centered({0, 5 + static_cast<float>(i),
                                         0}, 0.4f);
        node.child[i] = i;
    }
    const BoxIntersectResult r = rayIntersectBox(axisRay(), node);
    EXPECT_EQ(r.hits, 0u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(r.sortedChild[i], kInvalidNode);
}

TEST(RayIntersectTri, ReturnsRatio)
{
    TriNode node;
    node.tri = Triangle{{2, -1, -1}, {2, 1, -1}, {2, 0, 1}, 9};
    const TriHit h = rayIntersectTri(axisRay(), node);
    ASSERT_TRUE(h.hit);
    EXPECT_EQ(h.triId, 9u);
    EXPECT_NEAR(h.tNum / h.tDenom, 2.0f, 1e-4f);
}

TEST(ChildRefEncoding, RoundTrips)
{
    const std::uint32_t leaf = makeChildRef(1234, true);
    const std::uint32_t inner = makeChildRef(1234, false);
    EXPECT_TRUE(childIsLeaf(leaf));
    EXPECT_FALSE(childIsLeaf(inner));
    EXPECT_EQ(childIndex(leaf), 1234u);
    EXPECT_EQ(childIndex(inner), 1234u);
    EXPECT_FALSE(childIsLeaf(kInvalidNode));
}

} // namespace
} // namespace hsu
