/**
 * @file
 * Vec3 arithmetic and algebraic-identity tests.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "geom/vec3.hh"

namespace hsu
{
namespace
{

TEST(Vec3, BasicArithmetic)
{
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, Vec3(5, 7, 9));
    EXPECT_EQ(b - a, Vec3(3, 3, 3));
    EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
    EXPECT_EQ(2.0f * a, Vec3(2, 4, 6));
    EXPECT_EQ(a * b, Vec3(4, 10, 18));
    EXPECT_EQ(-a, Vec3(-1, -2, -3));
    EXPECT_EQ(b / 2.0f, Vec3(2, 2.5f, 3));
}

TEST(Vec3, CompoundAssignment)
{
    Vec3 v{1, 1, 1};
    v += Vec3{1, 2, 3};
    EXPECT_EQ(v, Vec3(2, 3, 4));
    v -= Vec3{1, 1, 1};
    EXPECT_EQ(v, Vec3(1, 2, 3));
    v *= 3.0f;
    EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3, Indexing)
{
    Vec3 v{7, 8, 9};
    EXPECT_EQ(v[0], 7);
    EXPECT_EQ(v[1], 8);
    EXPECT_EQ(v[2], 9);
    v[1] = 42;
    EXPECT_EQ(v.y, 42);
}

TEST(Vec3, DotAndLength)
{
    const Vec3 a{3, 4, 0};
    EXPECT_FLOAT_EQ(dot(a, a), 25.0f);
    EXPECT_FLOAT_EQ(length2(a), 25.0f);
    EXPECT_FLOAT_EQ(length(a), 5.0f);
    EXPECT_FLOAT_EQ(dot(a, Vec3{0, 0, 1}), 0.0f);
}

TEST(Vec3, CrossProductIdentities)
{
    const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_EQ(cross(x, y), z);
    EXPECT_EQ(cross(y, z), x);
    EXPECT_EQ(cross(z, x), y);
    // Anti-commutativity and orthogonality on random vectors.
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        const Vec3 a{rng.gaussian(), rng.gaussian(), rng.gaussian()};
        const Vec3 b{rng.gaussian(), rng.gaussian(), rng.gaussian()};
        const Vec3 c = cross(a, b);
        const Vec3 d = cross(b, a);
        EXPECT_NEAR(c.x, -d.x, 1e-4f);
        EXPECT_NEAR(dot(c, a), 0.0f, 1e-3f);
        EXPECT_NEAR(dot(c, b), 0.0f, 1e-3f);
    }
}

TEST(Vec3, NormalizeUnitLength)
{
    Rng rng(12);
    for (int i = 0; i < 50; ++i) {
        const Vec3 v{rng.uniform(-5, 5), rng.uniform(-5, 5),
                     rng.uniform(1, 5)};
        EXPECT_NEAR(length(normalize(v)), 1.0f, 1e-5f);
    }
}

TEST(Vec3, MinMaxComponentwise)
{
    const Vec3 a{1, 5, 3}, b{2, 4, 3};
    EXPECT_EQ(min(a, b), Vec3(1, 4, 3));
    EXPECT_EQ(max(a, b), Vec3(2, 5, 3));
}

TEST(Vec3, Distance2)
{
    EXPECT_FLOAT_EQ(distance2({0, 0, 0}, {1, 2, 2}), 9.0f);
    EXPECT_FLOAT_EQ(distance2({1, 1, 1}, {1, 1, 1}), 0.0f);
}

} // namespace
} // namespace hsu
