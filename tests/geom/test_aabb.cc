/**
 * @file
 * Axis-aligned bounding box invariants.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "geom/aabb.hh"

namespace hsu
{
namespace
{

TEST(Aabb, DefaultIsEmpty)
{
    Aabb b;
    EXPECT_TRUE(b.empty());
    EXPECT_FLOAT_EQ(b.surfaceArea(), 0.0f);
}

TEST(Aabb, ExpandPoint)
{
    Aabb b;
    b.expand({1, 2, 3});
    EXPECT_FALSE(b.empty());
    EXPECT_TRUE(b.contains({1, 2, 3}));
    EXPECT_EQ(b.lo, Vec3(1, 2, 3));
    EXPECT_EQ(b.hi, Vec3(1, 2, 3));
    b.expand({-1, 5, 0});
    EXPECT_TRUE(b.contains({0, 3, 1.5f}));
}

TEST(Aabb, ExpandBoxIsUnion)
{
    Aabb a({0, 0, 0}, {1, 1, 1});
    const Aabb b({2, -1, 0.5f}, {3, 0.5f, 2});
    a.expand(b);
    EXPECT_TRUE(a.contains({0, 0, 0}));
    EXPECT_TRUE(a.contains({3, 0.5f, 2}));
    EXPECT_EQ(a.lo, Vec3(0, -1, 0));
    EXPECT_EQ(a.hi, Vec3(3, 1, 2));
}

TEST(Aabb, CenterExtent)
{
    const Aabb b({0, 0, 0}, {2, 4, 6});
    EXPECT_EQ(b.center(), Vec3(1, 2, 3));
    EXPECT_EQ(b.extent(), Vec3(2, 4, 6));
}

TEST(Aabb, SurfaceArea)
{
    const Aabb unit({0, 0, 0}, {1, 1, 1});
    EXPECT_FLOAT_EQ(unit.surfaceArea(), 6.0f);
    const Aabb slab({0, 0, 0}, {2, 3, 0});
    EXPECT_FLOAT_EQ(slab.surfaceArea(), 2.0f * (6 + 0 + 0));
}

TEST(Aabb, ContainsBoundary)
{
    const Aabb b({0, 0, 0}, {1, 1, 1});
    EXPECT_TRUE(b.contains({0, 0, 0}));
    EXPECT_TRUE(b.contains({1, 1, 1}));
    EXPECT_FALSE(b.contains({1.0001f, 0.5f, 0.5f}));
    EXPECT_FALSE(b.contains({0.5f, -0.0001f, 0.5f}));
}

TEST(Aabb, Overlaps)
{
    const Aabb a({0, 0, 0}, {1, 1, 1});
    EXPECT_TRUE(a.overlaps(Aabb({0.5f, 0.5f, 0.5f}, {2, 2, 2})));
    EXPECT_TRUE(a.overlaps(Aabb({1, 1, 1}, {2, 2, 2}))); // touching
    EXPECT_FALSE(a.overlaps(Aabb({1.1f, 0, 0}, {2, 1, 1})));
    EXPECT_TRUE(a.overlaps(a));
}

TEST(Aabb, Distance2InsideIsZero)
{
    const Aabb b({0, 0, 0}, {2, 2, 2});
    EXPECT_FLOAT_EQ(b.distance2({1, 1, 1}), 0.0f);
    EXPECT_FLOAT_EQ(b.distance2({0, 0, 0}), 0.0f);
}

TEST(Aabb, Distance2Outside)
{
    const Aabb b({0, 0, 0}, {1, 1, 1});
    EXPECT_FLOAT_EQ(b.distance2({2, 0.5f, 0.5f}), 1.0f);
    EXPECT_FLOAT_EQ(b.distance2({2, 2, 0.5f}), 2.0f);
    EXPECT_FLOAT_EQ(b.distance2({-1, -1, -1}), 3.0f);
}

TEST(Aabb, CenteredFactory)
{
    const Aabb b = Aabb::centered({1, 2, 3}, 0.5f);
    EXPECT_EQ(b.lo, Vec3(0.5f, 1.5f, 2.5f));
    EXPECT_EQ(b.hi, Vec3(1.5f, 2.5f, 3.5f));
    EXPECT_TRUE(b.contains({1, 2, 3}));
}

TEST(Aabb, ContainsMatchesDistance2Property)
{
    // contains(p) <=> distance2(p) == 0 on random boxes/points.
    Rng rng(77);
    for (int i = 0; i < 200; ++i) {
        const Vec3 c{rng.uniform(-5, 5), rng.uniform(-5, 5),
                     rng.uniform(-5, 5)};
        const Aabb b = Aabb::centered(c, rng.uniform(0.1f, 2.0f));
        const Vec3 p{rng.uniform(-8, 8), rng.uniform(-8, 8),
                     rng.uniform(-8, 8)};
        EXPECT_EQ(b.contains(p), b.distance2(p) == 0.0f);
    }
}

} // namespace
} // namespace hsu
