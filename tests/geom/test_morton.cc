/**
 * @file
 * Morton code tests: bit expansion, interleaving, and ordering locality.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "geom/morton.hh"

namespace hsu
{
namespace
{

TEST(Morton, ExpandBits10)
{
    EXPECT_EQ(expandBits10(0), 0u);
    EXPECT_EQ(expandBits10(1), 1u);
    EXPECT_EQ(expandBits10(0b11), 0b1001u);
    EXPECT_EQ(expandBits10(0b111), 0b1001001u);
    // Top bit of a 10-bit value lands at position 27.
    EXPECT_EQ(expandBits10(1u << 9), 1u << 27);
}

TEST(Morton, ExpandBits21)
{
    EXPECT_EQ(expandBits21(0), 0ull);
    EXPECT_EQ(expandBits21(1), 1ull);
    EXPECT_EQ(expandBits21(0b11), 0b1001ull);
    EXPECT_EQ(expandBits21(1ull << 20), 1ull << 60);
}

TEST(Morton, ExpandedBitsDisjoint)
{
    // x, y, z channels never collide.
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const auto v = static_cast<std::uint64_t>(
            rng.nextBounded(1u << 21));
        const auto w = static_cast<std::uint64_t>(
            rng.nextBounded(1u << 21));
        EXPECT_EQ((expandBits21(v) << 2) & (expandBits21(w) << 1), 0ull);
        EXPECT_EQ((expandBits21(v) << 1) & expandBits21(w), 0ull);
    }
}

TEST(Morton, CornersOfUnitCube)
{
    EXPECT_EQ(mortonCode30({0, 0, 0}), 0u);
    // (1,1,1) maps to the max quantized cell -> all bits set (30 bits).
    EXPECT_EQ(mortonCode30({1, 1, 1}), (1u << 30) - 1u);
    EXPECT_EQ(mortonCode63({0, 0, 0}), 0ull);
    EXPECT_EQ(mortonCode63({1, 1, 1}), (1ull << 63) - 1ull);
}

TEST(Morton, MonotoneAlongDiagonal)
{
    // Codes increase along the main diagonal.
    std::uint64_t prev = 0;
    for (int i = 1; i <= 32; ++i) {
        const float f = static_cast<float>(i) / 33.0f;
        const std::uint64_t code = mortonCode63({f, f, f});
        EXPECT_GT(code, prev);
        prev = code;
    }
}

TEST(Morton, BoundsMapping)
{
    const Aabb bounds({-10, 0, 5}, {10, 20, 25});
    EXPECT_EQ(mortonCode63(Vec3{-10, 0, 5}, bounds), 0ull);
    EXPECT_EQ(mortonCode63(Vec3{10, 20, 25}, bounds),
              (1ull << 63) - 1ull);
    // Center lands strictly between.
    const std::uint64_t mid = mortonCode63(Vec3{0, 10, 15}, bounds);
    EXPECT_GT(mid, 0ull);
    EXPECT_LT(mid, (1ull << 63) - 1ull);
}

TEST(Morton, DegenerateAxisIsZero)
{
    // A flat (zero-extent) axis maps to 0 without dividing by zero.
    const Aabb flat({0, 0, 0}, {10, 0, 10});
    const std::uint64_t c = mortonCode63(Vec3{5, 0, 5}, flat);
    EXPECT_LT(c, 1ull << 63);
}

TEST(Morton, LocalityProperty)
{
    // Nearby points (same octant cell) share a longer common prefix
    // than far-apart points, on average.
    Rng rng(9);
    double near_prefix = 0, far_prefix = 0;
    const int trials = 200;
    auto prefix_len = [](std::uint64_t a, std::uint64_t b) {
        if (a == b)
            return 64;
        int n = 0;
        for (int bit = 62; bit >= 0; --bit) {
            if (((a >> bit) & 1) != ((b >> bit) & 1))
                break;
            ++n;
        }
        return n;
    };
    for (int i = 0; i < trials; ++i) {
        const Vec3 p{rng.nextFloat() * 0.9f, rng.nextFloat() * 0.9f,
                     rng.nextFloat() * 0.9f};
        const Vec3 nearby = p + Vec3(0.001f);
        const Vec3 far{rng.nextFloat(), rng.nextFloat(),
                       rng.nextFloat()};
        near_prefix += prefix_len(mortonCode63(p), mortonCode63(nearby));
        far_prefix += prefix_len(mortonCode63(p), mortonCode63(far));
    }
    EXPECT_GT(near_prefix / trials, far_prefix / trials + 5.0);
}

} // namespace
} // namespace hsu
