/**
 * @file
 * Ray-box (slab) and watertight ray-triangle intersection tests,
 * including randomized property sweeps against reference predicates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "geom/intersect.hh"

namespace hsu
{
namespace
{

PreparedRay
makeRay(const Vec3 &origin, const Vec3 &dir, float tmax = 1e30f)
{
    Ray r;
    r.origin = origin;
    r.dir = dir;
    r.tmax = tmax;
    return PreparedRay(r);
}

TEST(RayBox, DirectHit)
{
    const auto pr = makeRay({0, 0, 0}, {1, 0, 0});
    const Aabb box({2, -1, -1}, {4, 1, 1});
    const BoxHit h = rayBoxTest(pr, box);
    EXPECT_TRUE(h.hit);
    EXPECT_FLOAT_EQ(h.tEnter, 2.0f);
}

TEST(RayBox, MissBehind)
{
    const auto pr = makeRay({0, 0, 0}, {-1, 0, 0});
    const Aabb box({2, -1, -1}, {4, 1, 1});
    EXPECT_FALSE(rayBoxTest(pr, box).hit);
}

TEST(RayBox, OriginInsideHitsAtTmin)
{
    const auto pr = makeRay({0, 0, 0}, {0, 1, 0});
    const Aabb box({-1, -1, -1}, {1, 1, 1});
    const BoxHit h = rayBoxTest(pr, box);
    EXPECT_TRUE(h.hit);
    EXPECT_FLOAT_EQ(h.tEnter, 0.0f);
}

TEST(RayBox, TmaxCulls)
{
    const auto pr = makeRay({0, 0, 0}, {1, 0, 0}, 1.5f);
    const Aabb box({2, -1, -1}, {4, 1, 1});
    EXPECT_FALSE(rayBoxTest(pr, box).hit);
}

TEST(RayBox, AxisParallelRayOnSlabPlane)
{
    // Ray lying exactly on the box's y boundary plane: watertight slab
    // handling must not produce NaN poisoning.
    const auto pr = makeRay({0, 1, 0}, {1, 0, 0});
    const Aabb box({2, -1, -1}, {4, 1, 1});
    const BoxHit h = rayBoxTest(pr, box);
    EXPECT_TRUE(h.hit);
}

TEST(RayBox, EmptyBoxNeverHit)
{
    const auto pr = makeRay({0, 0, 0}, {1, 0, 0});
    EXPECT_FALSE(rayBoxTest(pr, Aabb{}).hit);
}

TEST(RayBox, RandomizedAgainstSampling)
{
    // If the slab test reports a hit with entry t, the point at t must
    // lie (approximately) on/in the box; if it reports a miss, densely
    // sampled ray points must all be outside.
    Rng rng(101);
    for (int i = 0; i < 300; ++i) {
        const Vec3 c{rng.uniform(-3, 3), rng.uniform(-3, 3),
                     rng.uniform(-3, 3)};
        const Aabb box = Aabb::centered(c, rng.uniform(0.2f, 1.5f));
        const Vec3 o{rng.uniform(-6, 6), rng.uniform(-6, 6),
                     rng.uniform(-6, 6)};
        Vec3 d{rng.gaussian(), rng.gaussian(), rng.gaussian()};
        if (length(d) < 1e-3f)
            d = {1, 0, 0};
        d = normalize(d);
        const auto pr = makeRay(o, d);
        const BoxHit h = rayBoxTest(pr, box);

        if (h.hit) {
            const Vec3 p = pr.ray.at(std::max(h.tEnter, 0.0f) + 1e-4f);
            const Aabb grown(box.lo - Vec3(1e-2f), box.hi + Vec3(1e-2f));
            EXPECT_TRUE(grown.contains(p))
                << "hit point outside box, i=" << i;
        } else {
            for (int s = 0; s < 64; ++s) {
                const Vec3 p = pr.ray.at(0.2f * static_cast<float>(s));
                const Aabb shrunk(box.lo + Vec3(1e-3f),
                                  box.hi - Vec3(1e-3f));
                EXPECT_FALSE(shrunk.contains(p))
                    << "missed ray passes through box, i=" << i;
            }
        }
    }
}

TEST(RayTriangle, DirectHit)
{
    const auto pr = makeRay({0, 0, -5}, {0, 0, 1});
    const Triangle tri{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 42};
    const TriHit h = rayTriangleTest(pr, tri);
    ASSERT_TRUE(h.hit);
    EXPECT_EQ(h.triId, 42u);
    EXPECT_NEAR(h.t(), 5.0f, 1e-4f);
}

TEST(RayTriangle, MissOutsideEdges)
{
    const auto pr = makeRay({5, 5, -5}, {0, 0, 1});
    const Triangle tri{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 1};
    EXPECT_FALSE(rayTriangleTest(pr, tri).hit);
}

TEST(RayTriangle, BehindOrigin)
{
    const auto pr = makeRay({0, 0, 5}, {0, 0, 1});
    const Triangle tri{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 1};
    EXPECT_FALSE(rayTriangleTest(pr, tri).hit);
}

TEST(RayTriangle, BothWindingsHit)
{
    // Watertight test is double-sided.
    const auto pr = makeRay({0, 0, -5}, {0, 0, 1});
    const Triangle fwd{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 1};
    const Triangle rev{{1, -1, 0}, {-1, -1, 0}, {0, 1, 0}, 2};
    EXPECT_TRUE(rayTriangleTest(pr, fwd).hit);
    EXPECT_TRUE(rayTriangleTest(pr, rev).hit);
}

TEST(RayTriangle, RandomizedBarycentricConsistency)
{
    // Construct the hit point from a known barycentric combination and
    // verify the test finds it with a consistent t.
    Rng rng(202);
    for (int i = 0; i < 300; ++i) {
        Triangle tri;
        tri.v0 = {rng.uniform(-2, 2), rng.uniform(-2, 2),
                  rng.uniform(-2, 2)};
        tri.v1 = tri.v0 + Vec3{rng.uniform(0.5f, 2), 0,
                               rng.uniform(-0.5f, 0.5f)};
        tri.v2 = tri.v0 + Vec3{0, rng.uniform(0.5f, 2),
                               rng.uniform(-0.5f, 0.5f)};
        tri.id = static_cast<std::uint32_t>(i);

        float u = rng.uniform(0.05f, 0.9f);
        float v = rng.uniform(0.05f, 0.9f);
        if (u + v > 0.95f) {
            u *= 0.45f;
            v *= 0.45f;
        }
        const Vec3 target = tri.v0 * (1 - u - v) + tri.v1 * u +
                            tri.v2 * v;
        const Vec3 origin = target + Vec3{rng.uniform(1, 3),
                                          rng.uniform(1, 3),
                                          rng.uniform(1, 3)};
        const Vec3 dir = normalize(target - origin);
        const auto pr = makeRay(origin, dir);
        const TriHit h = rayTriangleTest(pr, tri);
        ASSERT_TRUE(h.hit) << "i=" << i;
        const float expect_t = length(target - origin);
        EXPECT_NEAR(h.t(), expect_t, 1e-2f * expect_t + 1e-3f);
    }
}

TEST(RayTriangle, WatertightSharedEdge)
{
    // Two triangles sharing an edge: a ray through the shared edge must
    // hit at least one of them (no cracks).
    const Triangle a{{-1, 0, 0}, {1, 0, 0}, {0, 1, 0}, 1};
    const Triangle b{{-1, 0, 0}, {0, -1, 0}, {1, 0, 0}, 2};
    Rng rng(303);
    for (int i = 0; i < 200; ++i) {
        // Aim at a point on the shared edge (y == 0, x in [-1, 1]).
        const float x = rng.uniform(-0.99f, 0.99f);
        const Vec3 target{x, 0, 0};
        const Vec3 origin{rng.uniform(-0.5f, 0.5f),
                          rng.uniform(-0.5f, 0.5f), -4.0f};
        const auto pr =
            makeRay(origin, normalize(target - origin));
        const bool hit_any = rayTriangleTest(pr, a).hit ||
                             rayTriangleTest(pr, b).hit;
        EXPECT_TRUE(hit_any) << "crack at x=" << x;
    }
}

} // namespace
} // namespace hsu
