/**
 * @file
 * Dataset registry and generator tests: Table II metadata fidelity,
 * determinism, and basic statistical character of the stand-ins.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workloads/datasets.hh"

namespace hsu
{
namespace
{

TEST(Datasets, RegistryMatchesTable2)
{
    const auto &all = allDatasets();
    ASSERT_EQ(all.size(), 16u);

    // Spot-check the paper's rows: dimensions and metric.
    EXPECT_EQ(datasetInfo(DatasetId::Deep1b).dim, 96u);
    EXPECT_EQ(datasetInfo(DatasetId::Deep1b).metric, Metric::Angular);
    EXPECT_EQ(datasetInfo(DatasetId::Mnist).dim, 784u);
    EXPECT_EQ(datasetInfo(DatasetId::Mnist).metric, Metric::Euclidean);
    EXPECT_EQ(datasetInfo(DatasetId::Gist).dim, 960u);
    EXPECT_EQ(datasetInfo(DatasetId::Glove).dim, 200u);
    EXPECT_EQ(datasetInfo(DatasetId::LastFm).dim, 65u);
    EXPECT_EQ(datasetInfo(DatasetId::NyTimes).dim, 256u);
    EXPECT_EQ(datasetInfo(DatasetId::Sift1m).dim, 128u);
    EXPECT_EQ(datasetInfo(DatasetId::Bunny).dim, 3u);
    EXPECT_EQ(datasetInfo(DatasetId::BTree1m).kind, DatasetKind::Keys);
    EXPECT_EQ(datasetInfo(DatasetId::Sift10k).simPoints, 10000u);
    EXPECT_EQ(datasetInfo(DatasetId::Random10k).simPoints, 10000u);
    // Paper point counts preserved in the registry.
    EXPECT_EQ(datasetInfo(DatasetId::Deep1b).paperPoints, 9'900'000u);
    EXPECT_EQ(datasetInfo(DatasetId::Buddha).paperPoints, 543'000u);
}

TEST(Datasets, KindPartitions)
{
    EXPECT_EQ(datasetsOfKind(DatasetKind::HighDim).size(), 9u);
    EXPECT_EQ(datasetsOfKind(DatasetKind::Point3d).size(), 5u);
    EXPECT_EQ(datasetsOfKind(DatasetKind::Keys).size(), 2u);
}

TEST(Datasets, GenerationIsDeterministic)
{
    const auto &info = datasetInfo(DatasetId::Sift10k);
    const PointSet a = generatePoints(info);
    const PointSet b = generatePoints(info);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < 50; ++i) {
        for (unsigned d = 0; d < info.dim; ++d)
            EXPECT_EQ(a[i][d], b[i][d]);
    }
}

TEST(Datasets, SizesAndDims)
{
    for (const auto &info : allDatasets()) {
        if (info.kind == DatasetKind::Keys)
            continue;
        const PointSet pts = generatePoints(info);
        EXPECT_EQ(pts.size(), info.simPoints) << info.abbr;
        EXPECT_EQ(pts.dim(), info.dim) << info.abbr;
        // All finite.
        for (std::size_t i = 0; i < std::min<std::size_t>(100,
                                                          pts.size());
             ++i) {
            for (unsigned d = 0; d < info.dim; ++d)
                EXPECT_TRUE(std::isfinite(pts[i][d])) << info.abbr;
        }
    }
}

TEST(Datasets, QueriesDifferFromPoints)
{
    const auto &info = datasetInfo(DatasetId::Random10k);
    const PointSet pts = generatePoints(info);
    const PointSet queries = generateQueries(info, 64);
    EXPECT_EQ(queries.size(), 64u);
    // Query stream uses a different seed: first query != first point.
    bool any_diff = false;
    for (unsigned d = 0; d < 3; ++d)
        any_diff |= queries[0][d] != pts[0][d];
    EXPECT_TRUE(any_diff);
}

TEST(Datasets, KeysSortedUnique)
{
    for (const auto id : {DatasetId::BTree1m, DatasetId::BTree10k}) {
        const auto keys = generateKeys(datasetInfo(id));
        EXPECT_EQ(keys.size(), datasetInfo(id).simPoints);
        for (std::size_t i = 1; i < keys.size(); ++i)
            ASSERT_LT(keys[i - 1], keys[i]);
    }
}

TEST(Datasets, KeyQueriesMostlyHit)
{
    const auto &info = datasetInfo(DatasetId::BTree10k);
    const auto keys = generateKeys(info);
    const auto probes = generateKeyQueries(info, 2000);
    std::size_t hits = 0;
    for (const auto p : probes) {
        hits += std::binary_search(keys.begin(), keys.end(), p);
    }
    // ~80% of probes target present keys.
    EXPECT_GT(hits, 1400u);
    EXPECT_LT(hits, 1950u);
}

TEST(Datasets, CosmosIsClustered)
{
    // The cosmology stand-in must be far more clustered than uniform:
    // compare mean nearest-neighbor distance against uniform random.
    const PointSet cosmos = generatePoints(datasetInfo(DatasetId::Cosmos));
    const PointSet uniform =
        generatePoints(datasetInfo(DatasetId::Random10k));
    auto mean_nn = [](const PointSet &pts, float scale) {
        double sum = 0;
        const std::size_t samples = 64;
        for (std::size_t s = 0; s < samples; ++s) {
            const std::size_t i = s * (pts.size() / samples);
            float best = 1e30f;
            for (std::size_t j = 0; j < pts.size(); ++j) {
                if (j != i)
                    best = std::min(best, pointDist2(pts[i], pts[j], 3));
            }
            sum += std::sqrt(best) / scale;
        }
        return sum / samples;
    };
    // Normalize by domain size (cosmos ~22 units, uniform 1 unit).
    EXPECT_LT(mean_nn(cosmos, 22.0f), mean_nn(uniform, 1.0f) * 0.8);
}

TEST(Datasets, AngularSetsHaveSpread)
{
    const auto &info = datasetInfo(DatasetId::Glove);
    const PointSet pts = generatePoints(info);
    // Angular distance between random pairs should span a range
    // (clustered but not degenerate).
    float min_d = 1e9f, max_d = -1e9f;
    for (std::size_t i = 0; i < 50; ++i) {
        const float d = metricDist(Metric::Angular, pts[i],
                                   pts[i + 200], info.dim);
        min_d = std::min(min_d, d);
        max_d = std::max(max_d, d);
    }
    EXPECT_LT(min_d, 0.5f);
    EXPECT_GT(max_d, 0.5f);
}

} // namespace
} // namespace hsu
