/**
 * @file
 * Memory-hierarchy integration tests: request flow L1 -> L2 -> DRAM and
 * back, inclusive stats, and drain detection.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/memsys.hh"

namespace hsu
{
namespace
{

MemSysParams
smallParams()
{
    MemSysParams p;
    p.numL1 = 2;
    p.l1.sizeBytes = 4096;
    p.l1.assoc = 2;
    p.l2.sizeBytes = 16384;
    p.l2.assoc = 4;
    p.icntLatency = 5;
    return p;
}

void
runCycles(MemorySystem &mem, std::uint64_t &now, std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i)
        mem.tick(now++);
}

TEST(MemSys, ColdMissRoundTrip)
{
    StatGroup stats;
    MemorySystem mem(smallParams(), stats);
    int done = 0;
    EXPECT_EQ(mem.l1(0).access(0x100000, false, [&] { ++done; }, 0),
              CacheOutcome::Miss);
    std::uint64_t now = 0;
    runCycles(mem, now, 400);
    EXPECT_EQ(done, 1);
    EXPECT_TRUE(mem.idle());
    EXPECT_EQ(stats.get("l1d.0.misses"), 1.0);
    EXPECT_EQ(stats.get("l2.misses"), 1.0);
    EXPECT_EQ(stats.get("dram.accesses"), 1.0);
    EXPECT_EQ(stats.get("l2.lines_accessed"), 1.0);
}

TEST(MemSys, SecondL1HitsAfterFill)
{
    StatGroup stats;
    MemorySystem mem(smallParams(), stats);
    int done = 0;
    mem.l1(0).access(0x100000, false, [&] { ++done; }, 0);
    std::uint64_t now = 0;
    runCycles(mem, now, 400);
    EXPECT_EQ(mem.l1(0).access(0x100000, false, [&] { ++done; }, now),
              CacheOutcome::Hit);
    runCycles(mem, now, 50);
    EXPECT_EQ(done, 2);
    EXPECT_EQ(stats.get("dram.accesses"), 1.0);
}

TEST(MemSys, L2SharedAcrossL1s)
{
    StatGroup stats;
    MemorySystem mem(smallParams(), stats);
    int done = 0;
    mem.l1(0).access(0x200000, false, [&] { ++done; }, 0);
    std::uint64_t now = 0;
    runCycles(mem, now, 400);
    // The other SM's L1 misses but the L2 already has the line: no new
    // DRAM access.
    mem.l1(1).access(0x200000, false, [&] { ++done; }, now);
    runCycles(mem, now, 400);
    EXPECT_EQ(done, 2);
    EXPECT_EQ(stats.get("dram.accesses"), 1.0);
    EXPECT_EQ(stats.get("l2.hits"), 1.0);
}

TEST(MemSys, WritesReachDram)
{
    StatGroup stats;
    MemorySystem mem(smallParams(), stats);
    int done = 0;
    mem.l1(0).access(0x300000, true, [&] { ++done; }, 0);
    std::uint64_t now = 0;
    runCycles(mem, now, 600);
    EXPECT_EQ(done, 1);
    EXPECT_TRUE(mem.idle());
    EXPECT_EQ(stats.get("dram.accesses"), 1.0);
}

TEST(MemSys, ManyParallelMissesDrain)
{
    StatGroup stats;
    MemorySystem mem(smallParams(), stats);
    int done = 0;
    std::uint64_t now = 0;
    for (int i = 0; i < 16; ++i) {
        // Stagger to respect MSHR limits.
        while (mem.l1(0).access(0x400000 + i * 4096, false,
                                [&] { ++done; }, now) !=
               CacheOutcome::Miss) {
            mem.tick(now++);
        }
    }
    runCycles(mem, now, 3000);
    EXPECT_EQ(done, 16);
    EXPECT_TRUE(mem.idle());
    EXPECT_EQ(stats.get("dram.accesses"), 16.0);
}

TEST(MemSys, L2LineCountExcludesStructuralStalls)
{
    // Throttle the L2 MSHRs so concurrent misses bounce off it; the
    // rejected attempts must retry without inflating the line count.
    MemSysParams p = smallParams();
    p.l2.mshrEntries = 1;
    p.l2.mshrMergesPerEntry = 1;
    StatGroup stats;
    MemorySystem mem(p, stats);

    int done = 0;
    std::uint64_t now = 0;
    for (int i = 0; i < 12; ++i) {
        // Interleave both L1s so requests pile into the shared
        // down-channel and hit the crippled L2 back-to-back.
        while (mem.l1(i % 2).access(0x600000 + i * 4096, false,
                                    [&] { ++done; }, now) !=
               CacheOutcome::Miss) {
            mem.tick(now++);
        }
    }
    for (std::uint64_t i = 0; i < 20000 && !mem.idle(); ++i)
        mem.tick(now++);

    EXPECT_EQ(done, 12);
    EXPECT_TRUE(mem.idle());
    // Every accepted L2 access is exactly one line touched: rejected
    // attempts never count, retried ones count once.
    EXPECT_DOUBLE_EQ(stats.get("l2.lines_accessed"),
                     stats.get("l2.accesses"));
    EXPECT_DOUBLE_EQ(stats.get("l2.lines_accessed"), 12.0);
}

TEST(MemSys, LatencyHierarchyOrdering)
{
    // An L2 hit must be served faster than a DRAM round trip.
    StatGroup stats;
    MemorySystem mem(smallParams(), stats);
    std::uint64_t cold_done = 0, warm_done = 0;
    std::uint64_t now = 0;
    mem.l1(0).access(0x500000, false, [&] { cold_done = 1; }, 0);
    while (cold_done == 0) {
        mem.tick(now++);
        ASSERT_LT(now, 2000u);
    }
    const std::uint64_t cold_latency = now;

    // Evict from L1 by filling its sets... simpler: use the other L1.
    const std::uint64_t start = now;
    mem.l1(1).access(0x500000, false, [&] { warm_done = 1; }, now);
    while (warm_done == 0) {
        mem.tick(now++);
        ASSERT_LT(now, start + 2000);
    }
    EXPECT_LT(now - start, cold_latency);
}

} // namespace
} // namespace hsu
