/**
 * @file
 * Cache model tests: hit/miss classification, LRU replacement, MSHR
 * merging and structural rejection, write-through behaviour.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/cache.hh"

namespace hsu
{
namespace
{

struct CacheFixture : public ::testing::Test
{
    StatGroup stats;
    CacheParams params{.name = "c", .sizeBytes = 1024, .assoc = 2,
                       .lineBytes = 128, .hitLatency = 4,
                       .mshrEntries = 2, .mshrMergesPerEntry = 2,
                       .missQueueCapacity = 4};

    std::vector<std::pair<std::uint64_t, bool>> lowered;

    std::unique_ptr<Cache> make()
    {
        auto c = std::make_unique<Cache>(params, stats);
        c->setSendLower([this](std::uint64_t line, bool write,
                               std::uint64_t) {
            lowered.emplace_back(line, write);
            return true;
        });
        return c;
    }
};

TEST_F(CacheFixture, ColdMissThenHit)
{
    auto c = make();
    int done = 0;
    EXPECT_EQ(c->access(0x1000, false, [&] { ++done; }, 0),
              CacheOutcome::Miss);
    c->tick(0); // forwards the miss
    ASSERT_EQ(lowered.size(), 1u);
    EXPECT_EQ(lowered[0].first, 0x1000u / 128);

    c->fill(0x1000 / 128, 10);
    c->tick(10);
    EXPECT_EQ(done, 1);

    // Now a hit, completing after hitLatency.
    EXPECT_EQ(c->access(0x1000, false, [&] { ++done; }, 11),
              CacheOutcome::Hit);
    c->tick(11);
    EXPECT_EQ(done, 1); // not yet (latency 4)
    c->tick(15);
    EXPECT_EQ(done, 2);
    EXPECT_EQ(stats.get("c.hits"), 1.0);
    EXPECT_EQ(stats.get("c.misses"), 1.0);
}

TEST_F(CacheFixture, MshrMergesSecondAccess)
{
    auto c = make();
    int done = 0;
    EXPECT_EQ(c->access(0x2000, false, [&] { ++done; }, 0),
              CacheOutcome::Miss);
    EXPECT_EQ(c->access(0x2040, false, [&] { ++done; }, 1),
              CacheOutcome::HitReserved); // same 128B line
    c->tick(1);
    EXPECT_EQ(lowered.size(), 1u); // one miss forwarded, not two
    c->fill(0x2000 / 128, 20);
    c->tick(20);
    EXPECT_EQ(done, 2); // both waiters released
    EXPECT_EQ(stats.get("c.hit_reserved"), 1.0);
}

TEST_F(CacheFixture, MshrMergeLimitRejects)
{
    auto c = make();
    EXPECT_EQ(c->access(0x3000, false, nullptr, 0), CacheOutcome::Miss);
    EXPECT_EQ(c->access(0x3004, false, nullptr, 0),
              CacheOutcome::HitReserved);
    // mshrMergesPerEntry = 2: third access to the line rejects.
    EXPECT_EQ(c->access(0x3008, false, nullptr, 0),
              CacheOutcome::RejectMshrFull);
    EXPECT_EQ(stats.get("c.rejects"), 1.0);
}

TEST_F(CacheFixture, MshrEntryLimitRejects)
{
    auto c = make();
    EXPECT_EQ(c->access(0x10000, false, nullptr, 0), CacheOutcome::Miss);
    EXPECT_EQ(c->access(0x20000, false, nullptr, 0), CacheOutcome::Miss);
    // mshrEntries = 2: a third distinct line rejects.
    EXPECT_EQ(c->access(0x30000, false, nullptr, 0),
              CacheOutcome::RejectMshrFull);
}

TEST_F(CacheFixture, LruEviction)
{
    // 1KB, 2-way, 128B lines -> 4 sets. Lines mapping to set 0:
    // line numbers 0, 4, 8 (line % 4 == 0).
    auto c = make();
    auto touch = [&](std::uint64_t line, std::uint64_t now) {
        if (c->access(line * 128, false, nullptr, now) ==
            CacheOutcome::Miss) {
            c->tick(now);
            c->fill(line, now);
        }
    };
    touch(0, 0);
    touch(4, 1);
    // Re-touch line 0 so line 4 is LRU.
    EXPECT_EQ(c->access(0, false, nullptr, 2), CacheOutcome::Hit);
    // Insert line 8: evicts line 4.
    touch(8, 3);
    EXPECT_EQ(c->access(0, false, nullptr, 4), CacheOutcome::Hit);
    EXPECT_EQ(c->access(8 * 128, false, nullptr, 5), CacheOutcome::Hit);
    EXPECT_EQ(c->access(4 * 128, false, nullptr, 6), CacheOutcome::Miss);
}

TEST_F(CacheFixture, WriteThroughNoAllocate)
{
    auto c = make();
    int done = 0;
    EXPECT_EQ(c->access(0x4000, true, [&] { ++done; }, 0),
              CacheOutcome::Hit);
    c->tick(0);
    ASSERT_EQ(lowered.size(), 1u);
    EXPECT_TRUE(lowered[0].second); // write packet forwarded
    c->tick(4);
    EXPECT_EQ(done, 1);
    // Write did not allocate: read still misses.
    EXPECT_EQ(c->access(0x4000, false, nullptr, 5), CacheOutcome::Miss);
    EXPECT_EQ(stats.get("c.writes"), 1.0);
}

TEST_F(CacheFixture, BackpressureHoldsMissQueue)
{
    auto c = make();
    bool accept = false;
    c->setSendLower([&](std::uint64_t, bool, std::uint64_t) {
        return accept;
    });
    EXPECT_EQ(c->access(0x5000, false, nullptr, 0), CacheOutcome::Miss);
    c->tick(0);
    EXPECT_FALSE(c->idle()); // miss stuck in queue
    accept = true;
    c->tick(1);
    c->fill(0x5000 / 128, 2);
    c->tick(2);
    EXPECT_TRUE(c->idle());
}

TEST_F(CacheFixture, RetriedAccessNotDoubleCounted)
{
    auto c = make();
    EXPECT_EQ(c->access(0x10000, false, nullptr, 0), CacheOutcome::Miss);
    EXPECT_EQ(c->access(0x20000, false, nullptr, 0), CacheOutcome::Miss);
    EXPECT_EQ(c->access(0x30000, false, nullptr, 0),
              CacheOutcome::RejectMshrFull);
    EXPECT_EQ(stats.get("c.accesses"), 2.0); // reject not counted
}

} // namespace
} // namespace hsu
