/**
 * @file
 * FR-FCFS DRAM model tests: row-hit prioritization, bank mapping,
 * locality accounting, and drain behaviour.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/dram.hh"

namespace hsu
{
namespace
{

DramParams
smallParams()
{
    DramParams p;
    p.banks = 4;
    p.linesPerRow = 4;
    p.rowHitLatency = 5;
    p.rowMissLatency = 20;
    p.bankCycleTime = 2;
    return p;
}

void
runUntilIdle(Dram &dram, std::uint64_t &now, std::uint64_t limit = 10000)
{
    while (!dram.idle()) {
        dram.tick(now);
        ASSERT_LT(++now, limit);
    }
}

TEST(Dram, SingleAccessCompletes)
{
    StatGroup stats;
    Dram dram(smallParams(), stats);
    int done = 0;
    dram.enqueue(0, false, [&] { ++done; }, 0);
    std::uint64_t now = 0;
    runUntilIdle(dram, now);
    EXPECT_EQ(done, 1);
    EXPECT_EQ(stats.get("dram.accesses"), 1.0);
    EXPECT_EQ(stats.get("dram.activations"), 1.0); // cold row
    EXPECT_EQ(stats.get("dram.row_hits"), 0.0);
}

TEST(Dram, RowHitsAfterActivation)
{
    StatGroup stats;
    Dram dram(smallParams(), stats);
    // Lines 0, 4, 8 on bank 0 share row 0 (linesPerRow=4, 4 banks:
    // bank = line % 4, row = (line / 4) / 4).
    int done = 0;
    for (std::uint64_t line : {0ull, 4ull, 8ull})
        dram.enqueue(line, false, [&] { ++done; }, 0);
    std::uint64_t now = 0;
    runUntilIdle(dram, now);
    EXPECT_EQ(done, 3);
    EXPECT_EQ(stats.get("dram.activations"), 1.0);
    EXPECT_EQ(stats.get("dram.row_hits"), 2.0);
    EXPECT_NEAR(dram.rowLocality(), 3.0, 1e-9);
}

TEST(Dram, FrFcfsPrioritizesOpenRow)
{
    StatGroup stats;
    Dram dram(smallParams(), stats);
    std::vector<int> order;
    // Same bank (line % 4 == 0): rows 0, 1, 0.
    dram.enqueue(0, false, [&] { order.push_back(0); }, 0);
    dram.enqueue(16, false, [&] { order.push_back(1); }, 0);
    dram.enqueue(4, false, [&] { order.push_back(2); }, 0);
    std::uint64_t now = 0;
    runUntilIdle(dram, now);
    // Request 2 (row 0) jumps the older row-1 request.
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 1);
}

TEST(Dram, BanksServiceInParallel)
{
    StatGroup stats;
    DramParams p = smallParams();
    Dram dram(p, stats);
    int done = 0;
    // Four requests on four different banks.
    for (std::uint64_t line = 0; line < 4; ++line)
        dram.enqueue(line, false, [&] { ++done; }, 0);
    std::uint64_t now = 0;
    // All four finish within one row-miss latency + slack because the
    // banks overlap.
    while (!dram.idle() && now < p.rowMissLatency + 5) {
        dram.tick(now);
        ++now;
    }
    EXPECT_EQ(done, 4);
}

TEST(Dram, WritesAffectRowBuffer)
{
    StatGroup stats;
    Dram dram(smallParams(), stats);
    dram.enqueue(0, true, MemCompletion{}, 0);
    dram.enqueue(4, false, MemCompletion{}, 0); // row hit after write
    std::uint64_t now = 0;
    runUntilIdle(dram, now);
    EXPECT_EQ(stats.get("dram.row_hits"), 1.0);
}

TEST(Dram, LocalityZeroWithoutTraffic)
{
    StatGroup stats;
    Dram dram(smallParams(), stats);
    EXPECT_EQ(dram.rowLocality(), 0.0);
    EXPECT_TRUE(dram.idle());
}

TEST(Dram, NonPowerOfTwoBanksPanics)
{
    StatGroup stats;
    DramParams p = smallParams();
    p.banks = 3;
    EXPECT_DEATH(Dram(p, stats), "power of two");
}

} // namespace
} // namespace hsu
