/**
 * @file
 * Channel tests: delivery latency, bandwidth caps, and capacity
 * backpressure.
 */

#include <gtest/gtest.h>

#include "mem/channel.hh"

namespace hsu
{
namespace
{

TEST(Channel, DeliversAfterLatency)
{
    Channel<int> ch(10, 1, 8);
    std::vector<int> got;
    ch.setSink([&](int &&v) { got.push_back(v); });
    EXPECT_TRUE(ch.trySend(42, 0));
    for (std::uint64_t t = 0; t < 10; ++t) {
        ch.tick(t);
        EXPECT_TRUE(got.empty()) << "early delivery at " << t;
    }
    ch.tick(10);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 42);
    EXPECT_TRUE(ch.idle());
}

TEST(Channel, BandwidthLimitsAcceptancePerCycle)
{
    Channel<int> ch(1, 2, 16);
    ch.setSink([](int &&) {});
    EXPECT_TRUE(ch.trySend(1, 5));
    EXPECT_TRUE(ch.trySend(2, 5));
    EXPECT_FALSE(ch.trySend(3, 5)); // third in one cycle rejected
    EXPECT_TRUE(ch.trySend(3, 6));  // next cycle OK
}

TEST(Channel, BandwidthLimitsDeliveryPerCycle)
{
    Channel<int> ch(1, 1, 16);
    std::vector<int> got;
    ch.setSink([&](int &&v) { got.push_back(v); });
    ASSERT_TRUE(ch.trySend(1, 0));
    ch.tick(1);
    ASSERT_TRUE(ch.trySend(2, 1));
    ch.tick(2);
    ch.tick(3);
    EXPECT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], 1);
    EXPECT_EQ(got[1], 2);
}

TEST(Channel, CapacityBackpressure)
{
    Channel<int> ch(100, 1, 2);
    ch.setSink([](int &&) {});
    EXPECT_TRUE(ch.trySend(1, 0));
    EXPECT_TRUE(ch.trySend(2, 1));
    EXPECT_FALSE(ch.trySend(3, 2)); // full
    EXPECT_EQ(ch.inFlight(), 2u);
}

TEST(Channel, InOrderDelivery)
{
    Channel<int> ch(3, 4, 64);
    std::vector<int> got;
    ch.setSink([&](int &&v) { got.push_back(v); });
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(ch.trySend(i, static_cast<std::uint64_t>(i / 4)));
    for (std::uint64_t t = 0; t < 12; ++t)
        ch.tick(t);
    ASSERT_EQ(got.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

} // namespace
} // namespace hsu
