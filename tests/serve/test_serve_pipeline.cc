/**
 * @file
 * Scheduling-pipeline contracts.
 *
 * The tentpole guarantee of the serve/pipeline refactor is that the
 * composed pipeline (admission -> FIFO batcher -> degradation ->
 * ordering policy) reproduces the pre-refactor event loops EXACTLY
 * under the Fifo policy with the cache disabled. The golden reports
 * below were captured from the pre-refactor serve::Server and
 * shard::ClusterServer (hexfloat doubles pin the order-sensitive
 * histogram sums, not just the counters); any scheduling change that
 * shifts them is a regression, not noise.
 *
 * The Coherent policy's contracts are weaker by design — it reorders
 * WITHIN batches only, so batch membership, admission accounting, and
 * bit-identity across HSU_JOBS must all survive, while service times
 * may legitimately differ.
 */

#include <gtest/gtest.h>

#include "serve/pipeline.hh"
#include "serve/policy.hh"
#include "serve/server.hh"
#include "shard/cluster.hh"

namespace hsu::serve
{
namespace
{

std::vector<Request>
mkStream(Algo algo, DatasetId ds, double rate, std::size_t n,
         Cycle deadline, std::uint64_t seed)
{
    ArrivalConfig arr;
    arr.ratePerCycle = rate;
    arr.queryPoolSize = 64;
    arr.deadlineCycles = deadline;
    arr.seed = seed;
    return ArrivalGenerator(arr, algo, ds).generate(n);
}

ServerConfig
goldenServerConfig(unsigned instances)
{
    ServerConfig cfg;
    cfg.gpu.numSms = 2;
    cfg.gpu.finalize();
    cfg.numInstances = instances;
    cfg.pipeline.batch.maxBatch = 8;
    cfg.pipeline.batch.maxWaitCycles = 20'000;
    cfg.queryPoolSize = 64;
    return cfg;
}

// Case A of the pre-refactor capture: B+tree, 2 instances, light
// overload, no deadlines, no degradation.
TEST(Pipeline, GoldenFifoBtreeServer)
{
    Server server(Algo::Btree, DatasetId::BTree10k,
                  goldenServerConfig(2));
    const ServeReport r = server.run(
        mkStream(Algo::Btree, DatasetId::BTree10k, 1.0e-4, 96, 0, 21));

    EXPECT_EQ(r.offered, 96u);
    EXPECT_EQ(r.admitted, 96u);
    EXPECT_EQ(r.completed, 96u);
    EXPECT_EQ(r.shedAdmission, 0u);
    EXPECT_EQ(r.shedExpired, 0u);
    EXPECT_EQ(r.degraded, 0u);
    EXPECT_EQ(r.batches, 30u);
    EXPECT_EQ(r.cacheHits, 0u);
    EXPECT_EQ(r.lastCompletionCycle, 928'629u);
    EXPECT_EQ(r.latencyCycles.count(), 96u);
    EXPECT_EQ(r.latencyCycles.sum(), 0x1.4bbfcp+20);
    EXPECT_EQ(r.latencyCycles.max(), 0x1.5798p+14);
    EXPECT_EQ(r.queueWaitCycles.count(), 96u);
    EXPECT_EQ(r.queueWaitCycles.sum(), 0x1.22d27p+20);
    EXPECT_EQ(r.batchSize.count(), 30u);
    EXPECT_EQ(r.batchSize.sum(), 0x1.8p+6);
}

// Case B: GGNN under pressure — admission shedding and degraded
// knobs, long deadline (never expires).
TEST(Pipeline, GoldenFifoGgnnDegradedServer)
{
    ServerConfig cfg = goldenServerConfig(1);
    cfg.pipeline.degrade.highWater = 4;
    cfg.pipeline.degrade.shedWater = 24;
    cfg.pipeline.degrade.degradedKnobs = ServeKnobs{8, 4};
    Server server(Algo::Ggnn, DatasetId::Sift10k, cfg);
    const ServeReport r = server.run(mkStream(
        Algo::Ggnn, DatasetId::Sift10k, 5.0e-3, 48, 3'000'000, 9));

    EXPECT_EQ(r.offered, 48u);
    EXPECT_EQ(r.admitted, 32u);
    EXPECT_EQ(r.completed, 32u);
    EXPECT_EQ(r.shedAdmission, 16u);
    EXPECT_EQ(r.shedExpired, 0u);
    EXPECT_EQ(r.degraded, 32u);
    EXPECT_EQ(r.batches, 4u);
    EXPECT_EQ(r.lastCompletionCycle, 90'056u);
    EXPECT_EQ(r.latencyCycles.count(), 32u);
    EXPECT_EQ(r.latencyCycles.sum(), 0x1.a5803p+20);
    EXPECT_EQ(r.latencyCycles.max(), 0x1.4f87p+16);
    EXPECT_EQ(r.queueWaitCycles.count(), 32u);
    EXPECT_EQ(r.queueWaitCycles.sum(), 0x1.f1ae6p+19);
    EXPECT_EQ(r.batchSize.count(), 4u);
    EXPECT_EQ(r.batchSize.sum(), 0x1p+5);
}

// Case B2: same pressure with a tight deadline — queued requests
// expire at batch formation.
TEST(Pipeline, GoldenFifoDeadlineExpiryServer)
{
    ServerConfig cfg = goldenServerConfig(1);
    cfg.pipeline.degrade.highWater = 4;
    cfg.pipeline.degrade.shedWater = 24;
    cfg.pipeline.degrade.degradedKnobs = ServeKnobs{8, 4};
    Server server(Algo::Ggnn, DatasetId::Sift10k, cfg);
    const ServeReport r = server.run(
        mkStream(Algo::Ggnn, DatasetId::Sift10k, 5.0e-3, 48, 60'000,
                 9));

    EXPECT_EQ(r.offered, 48u);
    EXPECT_EQ(r.admitted, 32u);
    EXPECT_EQ(r.completed, 24u);
    EXPECT_EQ(r.shedAdmission, 16u);
    EXPECT_EQ(r.shedExpired, 8u);
    EXPECT_EQ(r.degraded, 24u);
    EXPECT_EQ(r.batches, 3u);
    EXPECT_EQ(r.lastCompletionCycle, 68'699u);
    EXPECT_EQ(r.latencyCycles.count(), 24u);
    EXPECT_EQ(r.latencyCycles.sum(), 0x1.fe42cp+19);
    EXPECT_EQ(r.latencyCycles.max(), 0x1.0051p+16);
    EXPECT_EQ(r.queueWaitCycles.count(), 24u);
    EXPECT_EQ(r.queueWaitCycles.sum(), 0x1.f0bb8p+18);
    EXPECT_EQ(r.batchSize.count(), 3u);
    EXPECT_EQ(r.batchSize.sum(), 0x1.8p+4);
}

// Case C: a 1x1 zero-link cluster runs the SAME pipeline composition
// and must match both the golden numbers and the live server report.
TEST(Pipeline, GoldenFifoOneByOneCluster)
{
    const auto reqs =
        mkStream(Algo::Btree, DatasetId::BTree10k, 1.0e-4, 96, 0, 21);

    shard::ClusterConfig cfg;
    cfg.gpu.numSms = 2;
    cfg.gpu.finalize();
    cfg.numShards = 1;
    cfg.replicasPerShard = 1;
    cfg.pipeline.batch.maxBatch = 8;
    cfg.pipeline.batch.maxWaitCycles = 20'000;
    cfg.queryPoolSize = 64;
    shard::ClusterServer cluster(Algo::Btree, DatasetId::BTree10k,
                                 cfg);
    const shard::ClusterReport r = cluster.run(reqs);

    EXPECT_EQ(r.offered, 96u);
    EXPECT_EQ(r.completed, 96u);
    EXPECT_EQ(r.partialAnswers, 0u);
    EXPECT_EQ(r.shedRequests, 0u);
    EXPECT_EQ(r.subqueries, 96u);
    EXPECT_EQ(r.cacheHits, 0u);
    EXPECT_EQ(r.lastCompletionCycle, 928'629u);
    EXPECT_EQ(r.latencyCycles.count(), 96u);
    EXPECT_EQ(r.latencyCycles.sum(), 0x1.4bbfcp+20);
    EXPECT_EQ(r.latencyCycles.max(), 0x1.5798p+14);
    ASSERT_EQ(r.shards.size(), 1u);
    EXPECT_EQ(r.shards[0].subqueries, 96u);
    EXPECT_EQ(r.shards[0].batches, 30u);
    EXPECT_EQ(r.shards[0].shedAdmission, 0u);
    EXPECT_EQ(r.shards[0].shedExpired, 0u);
    EXPECT_EQ(r.shards[0].degraded, 0u);
    EXPECT_EQ(r.shards[0].queueWaitCycles.sum(), 0x1.22d27p+20);

    Server server(Algo::Btree, DatasetId::BTree10k,
                  goldenServerConfig(1));
    const ServeReport single = server.run(reqs);
    EXPECT_EQ(r.lastCompletionCycle, single.lastCompletionCycle);
    EXPECT_EQ(r.latencyCycles.sum(), single.latencyCycles.sum());
    EXPECT_EQ(r.shards[0].queueWaitCycles.sum(),
              single.queueWaitCycles.sum());
}

// Case D: a 2-shard cluster with a real link and merge cost — pins
// the scatter/gather/join path through the refactored lanes.
TEST(Pipeline, GoldenFifoTwoShardCluster)
{
    shard::ClusterConfig cfg;
    cfg.gpu.numSms = 2;
    cfg.gpu.finalize();
    cfg.numShards = 2;
    cfg.replicasPerShard = 1;
    cfg.pipeline.batch.maxBatch = 8;
    cfg.pipeline.batch.maxWaitCycles = 20'000;
    cfg.queryPoolSize = 64;
    cfg.link.latencyCycles = 500;
    cfg.mergeCyclesPerShard = 100;
    shard::ClusterServer cluster(Algo::Bvhnn, DatasetId::Random10k,
                                 cfg);
    const shard::ClusterReport r = cluster.run(mkStream(
        Algo::Bvhnn, DatasetId::Random10k, 5.0e-5, 64, 0, 21));

    EXPECT_EQ(r.offered, 64u);
    EXPECT_EQ(r.completed, 64u);
    EXPECT_EQ(r.partialAnswers, 0u);
    EXPECT_EQ(r.shedRequests, 0u);
    EXPECT_EQ(r.subqueries, 68u);
    EXPECT_EQ(r.lastCompletionCycle, 1'218'651u);
    EXPECT_EQ(r.latencyCycles.count(), 64u);
    EXPECT_EQ(r.latencyCycles.sum(), 0x1.ad264p+20);
    EXPECT_EQ(r.latencyCycles.max(), 0x1.2d86p+15);
    ASSERT_EQ(r.shards.size(), 2u);
    EXPECT_EQ(r.shards[0].subqueries, 40u);
    EXPECT_EQ(r.shards[0].batches, 24u);
    EXPECT_EQ(r.shards[0].queueWaitCycles.sum(), 0x1.381dep+19);
    EXPECT_EQ(r.shards[1].subqueries, 28u);
    EXPECT_EQ(r.shards[1].batches, 18u);
    EXPECT_EQ(r.shards[1].queueWaitCycles.sum(), 0x1.bbf48p+18);
}

TEST(Pipeline, OrderBatchSortsByCoherenceKey)
{
    constexpr std::size_t kPool = 64;
    const std::vector<std::uint64_t> &keys =
        serveQueryCoherenceKeys(DatasetId::Random10k, kPool);

    std::vector<Request> batch;
    for (const std::uint32_t q : {17u, 3u, 63u, 0u, 42u, 3u}) {
        Request r;
        r.id = batch.size();
        r.queryId = q;
        batch.push_back(r);
    }
    std::vector<Request> fifo = batch;
    orderBatch(BatchPolicyKind::Fifo, DatasetId::Random10k, kPool,
               fifo);
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(fifo[i].id, batch[i].id); // Fifo never reorders

    orderBatch(BatchPolicyKind::Coherent, DatasetId::Random10k, kPool,
               batch);
    ASSERT_EQ(batch.size(), 6u);
    for (std::size_t i = 1; i < batch.size(); ++i) {
        const std::uint64_t ka = keys[batch[i - 1].queryId];
        const std::uint64_t kb = keys[batch[i].queryId];
        EXPECT_LE(ka, kb);
        if (ka == kb) // equal keys break ties by stream id
            EXPECT_LT(batch[i - 1].id, batch[i].id);
    }
}

TEST(Pipeline, CoherentPreservesMembershipAndAccounting)
{
    // Ordering policies only permute WITHIN batches: with shedding
    // disabled and no deadlines, admission and completion accounting
    // are policy-independent even under load.
    const auto reqs = mkStream(Algo::Bvhnn, DatasetId::Random10k,
                               2.0e-3, 96, 0, 5);
    ServerConfig cfg = goldenServerConfig(1);
    const ServeReport fifo =
        Server(Algo::Bvhnn, DatasetId::Random10k, cfg).run(reqs);
    cfg.pipeline.policy = BatchPolicyKind::Coherent;
    const ServeReport coh =
        Server(Algo::Bvhnn, DatasetId::Random10k, cfg).run(reqs);

    EXPECT_EQ(coh.offered, fifo.offered);
    EXPECT_EQ(coh.admitted, fifo.admitted);
    EXPECT_EQ(coh.completed, fifo.completed);
    EXPECT_EQ(coh.shedAdmission, 0u);
    EXPECT_EQ(coh.shedExpired, 0u);
    EXPECT_GT(coh.batches, 0u);
}

TEST(Pipeline, CoherentBitIdenticalAcrossJobs)
{
    const auto reqs = mkStream(Algo::Flann, DatasetId::Bunny, 1.0e-3,
                               64, 0, 21);
    ServerConfig cfg = goldenServerConfig(2);
    cfg.pipeline.policy = BatchPolicyKind::Coherent;

    cfg.jobs = 1;
    const ServeReport rep1 =
        Server(Algo::Flann, DatasetId::Bunny, cfg).run(reqs);
    cfg.jobs = 4;
    Server parallel(Algo::Flann, DatasetId::Bunny, cfg);
    const ServeReport rep4 = parallel.run(reqs);
    const ServeReport again = parallel.run(reqs);

    for (const ServeReport *r : {&rep4, &again}) {
        EXPECT_EQ(rep1.completed, r->completed);
        EXPECT_EQ(rep1.batches, r->batches);
        EXPECT_EQ(rep1.lastCompletionCycle, r->lastCompletionCycle);
        EXPECT_EQ(rep1.latencyCycles.sum(), r->latencyCycles.sum());
        EXPECT_EQ(rep1.queueWaitCycles.sum(),
                  r->queueWaitCycles.sum());
        EXPECT_EQ(rep1.kernelCycles, r->kernelCycles);
        EXPECT_EQ(rep1.l1Accesses, r->l1Accesses);
        EXPECT_EQ(rep1.l1Misses, r->l1Misses);
        EXPECT_EQ(rep1.rtuBusyCycles, r->rtuBusyCycles);
    }
}

TEST(Pipeline, ReportsMemorySystemTotals)
{
    Server server(Algo::Btree, DatasetId::BTree10k,
                  goldenServerConfig(1));
    const ServeReport r = server.run(
        mkStream(Algo::Btree, DatasetId::BTree10k, 1.0e-4, 32, 0, 7));
    EXPECT_GT(r.kernelCycles, 0u);
    EXPECT_EQ(r.smCycles, r.kernelCycles * 2); // numSms == 2
    EXPECT_GT(r.l1Accesses, 0.0);
    EXPECT_GE(r.l1Misses, 0.0);
    EXPECT_GT(r.l1HitRate(), 0.0);
    EXPECT_LE(r.l1HitRate(), 1.0);
    // The HSU config keeps the RT unit busy; residency is a fraction.
    EXPECT_GT(r.rtuBusyCycles, 0.0);
    EXPECT_GT(r.warpBufferResidency(), 0.0);
    EXPECT_LE(r.warpBufferResidency(), 1.0);
}

} // namespace
} // namespace hsu::serve
