/**
 * @file
 * Answer-cache semantics: deterministic LRU replacement, exact vs
 * recall-tolerant hit keys (B+tree always exact), and the serving
 * integration — hits complete in the hit latency, bypass the queue,
 * and the accounting still balances, bit-identically across HSU_JOBS.
 */

#include <gtest/gtest.h>

#include "serve/cache.hh"
#include "serve/server.hh"

namespace hsu::serve
{
namespace
{

constexpr std::uint32_t kPool = 64;

TEST(AnswerCache, LruEvictsLeastRecentlyUsed)
{
    AnswerCacheConfig cfg;
    cfg.capacity = 2;
    AnswerCache cache(cfg, Algo::Btree, DatasetId::BTree10k, kPool);

    EXPECT_FALSE(cache.lookup(1));
    cache.insert(1);
    cache.insert(2);
    EXPECT_TRUE(cache.lookup(1)); // 1 becomes most-recent
    cache.insert(3);              // evicts 2, the LRU entry
    EXPECT_FALSE(cache.lookup(2));
    EXPECT_TRUE(cache.lookup(1));
    EXPECT_TRUE(cache.lookup(3));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.insertions(), 3u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.hits(), 3u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(AnswerCache, ReinsertOnlyRefreshesRecency)
{
    AnswerCacheConfig cfg;
    cfg.capacity = 2;
    AnswerCache cache(cfg, Algo::Btree, DatasetId::BTree10k, kPool);
    cache.insert(1);
    cache.insert(2);
    cache.insert(1); // refresh, not a new entry
    EXPECT_EQ(cache.insertions(), 2u);
    cache.insert(3); // now 2 is LRU and goes
    EXPECT_FALSE(cache.lookup(2));
    EXPECT_TRUE(cache.lookup(1));
}

TEST(AnswerCache, DisabledCacheNeverHitsOrCounts)
{
    AnswerCache cache(AnswerCacheConfig{}, Algo::Btree,
                      DatasetId::BTree10k, kPool);
    cache.insert(1);
    EXPECT_FALSE(cache.lookup(1));
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.insertions(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(AnswerCache, TolerantCollapsesMortonCells)
{
    // Tolerance past the full 63-bit code puts every point query in
    // one cell: any answered query serves every other.
    AnswerCacheConfig cfg;
    cfg.capacity = 8;
    cfg.mode = CacheMode::Tolerant;
    cfg.toleranceLevels = 21;
    AnswerCache cache(cfg, Algo::Bvhnn, DatasetId::Random10k, kPool);
    cache.insert(0);
    EXPECT_TRUE(cache.lookup(63));

    // Zero tolerance keeps full Morton codes: two queries with
    // different codes never alias.
    const std::vector<std::uint64_t> &keys =
        serveQueryCoherenceKeys(DatasetId::Random10k, kPool);
    std::uint32_t other = 1;
    while (other < kPool && keys[other] == keys[0])
        ++other;
    ASSERT_LT(other, kPool); // a 64-query pool has distinct codes
    AnswerCacheConfig exact_cells = cfg;
    exact_cells.toleranceLevels = 0;
    AnswerCache strict(exact_cells, Algo::Bvhnn, DatasetId::Random10k,
                       kPool);
    strict.insert(0);
    EXPECT_FALSE(strict.lookup(other));
}

TEST(AnswerCache, BtreeIsAlwaysExact)
{
    // Key lookups return exact values; tolerance must never apply.
    AnswerCacheConfig cfg;
    cfg.capacity = 8;
    cfg.mode = CacheMode::Tolerant;
    cfg.toleranceLevels = 21;
    AnswerCache cache(cfg, Algo::Btree, DatasetId::BTree10k, kPool);
    cache.insert(0);
    EXPECT_FALSE(cache.lookup(1));
    EXPECT_TRUE(cache.lookup(0));
}

ServerConfig
cachedConfig()
{
    ServerConfig cfg;
    cfg.gpu.numSms = 2;
    cfg.gpu.finalize();
    cfg.numInstances = 1;
    cfg.pipeline.batch.maxBatch = 8;
    cfg.pipeline.batch.maxWaitCycles = 20'000;
    cfg.pipeline.cache.capacity = 16;
    cfg.queryPoolSize = kPool;
    return cfg;
}

std::vector<Request>
zipfStream(std::size_t n, std::uint64_t seed,
           QueryDist dist = QueryDist::Zipf)
{
    ArrivalConfig arr;
    arr.ratePerCycle = 1.0e-4;
    arr.queryPoolSize = kPool;
    arr.queryDist = dist;
    arr.zipfExponent = 1.2;
    arr.seed = seed;
    return ArrivalGenerator(arr, Algo::Btree, DatasetId::BTree10k)
        .generate(n);
}

TEST(AnswerCache, ServerHitsBypassTheQueue)
{
    const auto reqs = zipfStream(128, 33);
    Server server(Algo::Btree, DatasetId::BTree10k, cachedConfig());
    const ServeReport rep = server.run(reqs);

    EXPECT_GT(rep.cacheHits, 0u);
    EXPECT_GT(rep.cacheHitRate(), 0.0);
    // Conservation: every request completes or is shed; hits complete
    // without ever occupying a queue slot.
    EXPECT_EQ(rep.completed + rep.shedAdmission + rep.shedExpired,
              rep.offered);
    EXPECT_EQ(rep.queueWaitCycles.count() + rep.cacheHits +
                  rep.shedAdmission + rep.shedExpired,
              rep.offered);
    // A hit's latency is exactly the configured lookup cost — far
    // below any queued request's batching wait.
    EXPECT_EQ(rep.latencyCycles.min(),
              static_cast<double>(
                  cachedConfig().pipeline.cache.hitLatencyCycles));
}

TEST(AnswerCache, ServerCacheDeterministicAcrossJobs)
{
    const auto reqs = zipfStream(96, 5);
    ServerConfig cfg = cachedConfig();
    cfg.jobs = 1;
    const ServeReport rep1 =
        Server(Algo::Btree, DatasetId::BTree10k, cfg).run(reqs);
    cfg.jobs = 4;
    Server parallel(Algo::Btree, DatasetId::BTree10k, cfg);
    const ServeReport rep4 = parallel.run(reqs);
    const ServeReport again = parallel.run(reqs);
    for (const ServeReport *r : {&rep4, &again}) {
        EXPECT_EQ(rep1.cacheHits, r->cacheHits);
        EXPECT_EQ(rep1.completed, r->completed);
        EXPECT_EQ(rep1.batches, r->batches);
        EXPECT_EQ(rep1.lastCompletionCycle, r->lastCompletionCycle);
        EXPECT_EQ(rep1.latencyCycles.sum(), r->latencyCycles.sum());
    }
}

TEST(AnswerCache, ZipfStreamBeatsUniformHitRate)
{
    // The cache earns its keep on skewed traffic: the same server
    // under a Zipf stream must hit strictly more often than under a
    // uniform stream of the same length.
    Server server(Algo::Btree, DatasetId::BTree10k, cachedConfig());
    const ServeReport zipf = server.run(zipfStream(192, 11));
    const ServeReport uniform =
        server.run(zipfStream(192, 11, QueryDist::Uniform));
    EXPECT_GT(zipf.cacheHitRate(), uniform.cacheHitRate());
}

} // namespace
} // namespace hsu::serve
