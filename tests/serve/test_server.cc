/**
 * @file
 * End-to-end serving-loop semantics: request conservation, overload
 * response, and bit-identical results across simulation thread counts
 * (the multi-instance server fans batch simulations over the shared
 * ThreadPool; this test is the TSan target for that path).
 */

#include <gtest/gtest.h>

#include "serve/server.hh"

namespace hsu::serve
{
namespace
{

ServerConfig
smallConfig(unsigned instances = 2)
{
    ServerConfig cfg;
    cfg.gpu.numSms = 2;
    cfg.gpu.finalize();
    cfg.numInstances = instances;
    cfg.pipeline.batch.maxBatch = 8;
    cfg.pipeline.batch.maxWaitCycles = 20'000;
    cfg.queryPoolSize = 64;
    return cfg;
}

std::vector<Request>
stream(Algo algo, DatasetId dataset, double rate_per_cycle,
       std::size_t count, Cycle deadline = 0,
       std::uint64_t seed = 21)
{
    ArrivalConfig arr;
    arr.ratePerCycle = rate_per_cycle;
    arr.queryPoolSize = 64;
    arr.deadlineCycles = deadline;
    arr.seed = seed;
    return ArrivalGenerator(arr, algo, dataset).generate(count);
}

void
expectSameReport(const ServeReport &a, const ServeReport &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.shedAdmission, b.shedAdmission);
    EXPECT_EQ(a.shedExpired, b.shedExpired);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.lastCompletionCycle, b.lastCompletionCycle);
    EXPECT_EQ(a.latencyCycles.count(), b.latencyCycles.count());
    EXPECT_DOUBLE_EQ(a.latencyCycles.max(), b.latencyCycles.max());
    EXPECT_DOUBLE_EQ(a.latencyCycles.sum(), b.latencyCycles.sum());
    for (const double p : {50.0, 95.0, 99.0}) {
        EXPECT_DOUBLE_EQ(a.latencyCycles.percentile(p),
                         b.latencyCycles.percentile(p));
    }
}

TEST(Server, RequestConservation)
{
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 5.0e-5, 96);
    Server server(Algo::Btree, DatasetId::BTree10k, smallConfig());
    const ServeReport rep = server.run(reqs);

    EXPECT_EQ(rep.offered, 96u);
    EXPECT_EQ(rep.completed + rep.shedAdmission + rep.shedExpired,
              rep.offered);
    EXPECT_EQ(rep.latencyCycles.count(), rep.completed);
    EXPECT_EQ(rep.queueWaitCycles.count() + rep.shedAdmission +
                  rep.shedExpired,
              rep.offered);
    EXPECT_GT(rep.batches, 0u);
    EXPECT_GT(rep.lastCompletionCycle, 0u);
    // Every served request's latency covers at least the launch
    // overhead plus one kernel cycle.
    EXPECT_GT(rep.latencyCycles.min(),
              static_cast<double>(smallConfig().launchOverheadCycles));
}

TEST(Server, BitIdenticalAcrossJobs)
{
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 1.0e-4, 64);
    ServerConfig cfg = smallConfig(2);
    cfg.jobs = 1;
    Server serial(Algo::Btree, DatasetId::BTree10k, cfg);
    const ServeReport rep1 = serial.run(reqs);
    cfg.jobs = 4;
    Server parallel(Algo::Btree, DatasetId::BTree10k, cfg);
    const ServeReport rep4 = parallel.run(reqs);
    expectSameReport(rep1, rep4);

    // And across repeated runs of the same server.
    const ServeReport again = parallel.run(reqs);
    expectSameReport(rep4, again);
}

TEST(Server, OverloadShedsAtHighWater)
{
    // Arrivals far faster than service; tiny shed threshold.
    ServerConfig cfg = smallConfig(1);
    cfg.pipeline.degrade.shedWater = 16;
    cfg.pipeline.degrade.highWater = 8;
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 1.0e-2, 128);
    Server server(Algo::Btree, DatasetId::BTree10k, cfg);
    const ServeReport rep = server.run(reqs);

    EXPECT_GT(rep.shedAdmission, 0u);
    EXPECT_EQ(rep.completed + rep.shedAdmission + rep.shedExpired,
              rep.offered);
    // The queue bound keeps batches full once saturated.
    EXPECT_GT(rep.batchSize.max(), 0.0);
    EXPECT_LE(rep.batchSize.max(),
              static_cast<double>(cfg.pipeline.batch.maxBatch));
}

TEST(Server, DeadlineShedsExpiredRequests)
{
    // Overload + a deadline shorter than the queueing delay: requests
    // expire in queue and are dropped at batch formation.
    ServerConfig cfg = smallConfig(1);
    cfg.pipeline.degrade.shedWater = 1'000'000; // admission never sheds
    const auto reqs = stream(Algo::Btree, DatasetId::BTree10k, 1.0e-2,
                             128, /*deadline=*/5'000);
    Server server(Algo::Btree, DatasetId::BTree10k, cfg);
    const ServeReport rep = server.run(reqs);

    EXPECT_GT(rep.shedExpired, 0u);
    EXPECT_EQ(rep.completed + rep.shedExpired + rep.shedAdmission,
              rep.offered);
}

TEST(Server, GgnnDegradesUnderPressure)
{
    ServerConfig cfg = smallConfig(1);
    cfg.pipeline.degrade.highWater = 4;
    cfg.pipeline.degrade.shedWater = 1'000'000;
    cfg.pipeline.degrade.degradedKnobs = ServeKnobs{8, 4};
    const auto reqs =
        stream(Algo::Ggnn, DatasetId::Sift10k, 5.0e-3, 48);
    Server server(Algo::Ggnn, DatasetId::Sift10k, cfg);
    const ServeReport rep = server.run(reqs);

    EXPECT_GT(rep.degraded, 0u);
    EXPECT_EQ(rep.completed, rep.offered); // degraded, not dropped
}

TEST(Server, SaturationRaisesTailLatency)
{
    // Open-loop sanity: a saturating stream's p99 dominates a light
    // stream's. (Light load is NOT latency-free: a lone request pays
    // up to maxWaitCycles of batching delay — so the heavy stream must
    // queue well past that to dominate, which 256 back-to-back
    // requests on two instances guarantee.)
    ServerConfig cfg = smallConfig(2);
    Server server(Algo::Btree, DatasetId::BTree10k, cfg);
    const ServeReport light = server.run(
        stream(Algo::Btree, DatasetId::BTree10k, 2.0e-6, 64));
    const ServeReport heavy = server.run(
        stream(Algo::Btree, DatasetId::BTree10k, 1.0e-1, 512));
    EXPECT_GT(heavy.latencyCycles.percentile(99.0),
              light.latencyCycles.percentile(99.0));
    // Light load's p99 is bounded by batching wait + service, not by
    // queueing: it must stay under maxWait + a small service allowance.
    EXPECT_LT(light.latencyCycles.percentile(99.0),
              static_cast<double>(cfg.pipeline.batch.maxWaitCycles) + 50'000.0);
}

} // namespace
} // namespace hsu::serve
