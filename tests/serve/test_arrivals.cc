/**
 * @file
 * Arrival-generator determinism and distribution sanity.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "serve/arrivals.hh"

namespace hsu::serve
{
namespace
{

bool
sameRequest(const Request &a, const Request &b)
{
    return a.id == b.id && a.arrivalCycle == b.arrivalCycle &&
           a.algo == b.algo && a.dataset == b.dataset &&
           a.queryId == b.queryId && a.deadlineCycle == b.deadlineCycle;
}

TEST(Arrivals, DeterministicAcrossInstances)
{
    ArrivalConfig cfg;
    cfg.ratePerCycle = 1.0e-4;
    cfg.deadlineCycles = 500'000;
    cfg.seed = 42;
    ArrivalGenerator a(cfg, Algo::Ggnn, DatasetId::Sift10k);
    ArrivalGenerator b(cfg, Algo::Ggnn, DatasetId::Sift10k);
    const auto sa = a.generate(256);
    const auto sb = b.generate(256);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i)
        EXPECT_TRUE(sameRequest(sa[i], sb[i])) << "request " << i;
}

TEST(Arrivals, IndependentOfJobsEnv)
{
    // The generator never consults HSU_JOBS or any thread state; the
    // stream must be identical whatever the env says.
    ArrivalConfig cfg;
    cfg.ratePerCycle = 2.0e-5;
    cfg.seed = 7;
    setenv("HSU_JOBS", "1", 1);
    const auto s1 =
        ArrivalGenerator(cfg, Algo::Btree, DatasetId::BTree10k)
            .generate(128);
    setenv("HSU_JOBS", "8", 1);
    const auto s8 =
        ArrivalGenerator(cfg, Algo::Btree, DatasetId::BTree10k)
            .generate(128);
    unsetenv("HSU_JOBS");
    ASSERT_EQ(s1.size(), s8.size());
    for (std::size_t i = 0; i < s1.size(); ++i)
        EXPECT_TRUE(sameRequest(s1[i], s8[i])) << "request " << i;
}

TEST(Arrivals, SeedsProduceDistinctStreams)
{
    ArrivalConfig cfg;
    cfg.ratePerCycle = 1.0e-4;
    cfg.seed = 1;
    ArrivalConfig cfg2 = cfg;
    cfg2.seed = 2;
    const auto sa =
        ArrivalGenerator(cfg, Algo::Flann, DatasetId::Bunny)
            .generate(64);
    const auto sb =
        ArrivalGenerator(cfg2, Algo::Flann, DatasetId::Bunny)
            .generate(64);
    bool any_diff = false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
        if (sa[i].arrivalCycle != sb[i].arrivalCycle ||
            sa[i].queryId != sb[i].queryId) {
            any_diff = true;
            break;
        }
    }
    EXPECT_TRUE(any_diff);
}

TEST(Arrivals, StreamInvariants)
{
    ArrivalConfig cfg;
    cfg.ratePerCycle = 5.0e-5;
    cfg.queryPoolSize = 100;
    cfg.deadlineCycles = 123'456;
    cfg.seed = 3;
    ArrivalGenerator gen(cfg, Algo::Bvhnn, DatasetId::Random10k);
    Cycle prev = 0;
    std::uint64_t prev_id = 0;
    for (unsigned i = 0; i < 512; ++i) {
        const Request r = gen.next();
        EXPECT_GE(r.arrivalCycle, prev);
        EXPECT_GT(r.arrivalCycle, 0u);
        if (i > 0) {
            EXPECT_EQ(r.id, prev_id + 1);
        }
        EXPECT_LT(r.queryId, cfg.queryPoolSize);
        EXPECT_EQ(r.deadlineCycle, r.arrivalCycle + cfg.deadlineCycles);
        prev = r.arrivalCycle;
        prev_id = r.id;
    }
}

TEST(Arrivals, PoissonMeanRateApproximate)
{
    ArrivalConfig cfg;
    cfg.ratePerCycle = 1.0e-3; // mean gap 1000 cycles
    cfg.seed = 11;
    const auto stream =
        ArrivalGenerator(cfg, Algo::Ggnn, DatasetId::Sift10k)
            .generate(4000);
    const double mean_gap =
        static_cast<double>(stream.back().arrivalCycle) /
        static_cast<double>(stream.size());
    EXPECT_NEAR(mean_gap, 1000.0, 100.0); // ~6 sigma for n=4000
}

TEST(Arrivals, BurstyPreservesMeanRate)
{
    ArrivalConfig cfg;
    cfg.process = ArrivalProcess::Bursty;
    cfg.ratePerCycle = 1.0e-3;
    cfg.burstFactor = 4.0;
    cfg.burstFraction = 0.2;
    cfg.meanBurstCycles = 20'000.0;
    cfg.seed = 13;
    const auto stream =
        ArrivalGenerator(cfg, Algo::Ggnn, DatasetId::Sift10k)
            .generate(20'000);
    const double mean_gap =
        static_cast<double>(stream.back().arrivalCycle) /
        static_cast<double>(stream.size());
    // Burstiness raises gap variance, so allow a wider band.
    EXPECT_NEAR(mean_gap, 1000.0, 200.0);
}

TEST(Arrivals, BurstyGapsAreOverdispersed)
{
    // Coefficient of variation of MMPP gaps must exceed Poisson's 1.
    auto gap_cv = [](const std::vector<Request> &s) {
        std::vector<double> gaps;
        for (std::size_t i = 1; i < s.size(); ++i) {
            gaps.push_back(static_cast<double>(s[i].arrivalCycle -
                                               s[i - 1].arrivalCycle));
        }
        double mean = 0.0;
        for (const double g : gaps)
            mean += g;
        mean /= static_cast<double>(gaps.size());
        double var = 0.0;
        for (const double g : gaps)
            var += (g - mean) * (g - mean);
        var /= static_cast<double>(gaps.size());
        return std::sqrt(var) / mean;
    };
    ArrivalConfig cfg;
    cfg.ratePerCycle = 1.0e-3;
    cfg.seed = 17;
    const auto poisson =
        ArrivalGenerator(cfg, Algo::Ggnn, DatasetId::Sift10k)
            .generate(8000);
    cfg.process = ArrivalProcess::Bursty;
    cfg.burstFactor = 4.0;
    cfg.burstFraction = 0.2;
    cfg.meanBurstCycles = 50'000.0;
    const auto bursty =
        ArrivalGenerator(cfg, Algo::Ggnn, DatasetId::Sift10k)
            .generate(8000);
    EXPECT_GT(gap_cv(bursty), gap_cv(poisson) * 1.1);
}

TEST(Arrivals, ZipfDeterministicWithPinnedSeed)
{
    ArrivalConfig cfg;
    cfg.ratePerCycle = 1.0e-4;
    cfg.queryDist = QueryDist::Zipf;
    cfg.zipfExponent = 1.0;
    cfg.seed = 42;
    ArrivalGenerator a(cfg, Algo::Ggnn, DatasetId::Sift10k);
    ArrivalGenerator b(cfg, Algo::Ggnn, DatasetId::Sift10k);
    const auto sa = a.generate(256);
    const auto sb = b.generate(256);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i)
        EXPECT_TRUE(sameRequest(sa[i], sb[i])) << "request " << i;
}

TEST(Arrivals, ZipfPreservesMeanRate)
{
    // The popularity distribution picks WHICH query, never WHEN: the
    // timing process must deliver the same mean rate under Zipf.
    ArrivalConfig cfg;
    cfg.ratePerCycle = 1.0e-3; // mean gap 1000 cycles
    cfg.queryDist = QueryDist::Zipf;
    cfg.zipfExponent = 1.2;
    cfg.seed = 11;
    const auto stream =
        ArrivalGenerator(cfg, Algo::Ggnn, DatasetId::Sift10k)
            .generate(4000);
    const double mean_gap =
        static_cast<double>(stream.back().arrivalCycle) /
        static_cast<double>(stream.size());
    EXPECT_NEAR(mean_gap, 1000.0, 100.0); // ~6 sigma for n=4000
}

TEST(Arrivals, ZipfSkewsTowardLowIds)
{
    ArrivalConfig cfg;
    cfg.ratePerCycle = 1.0e-4;
    cfg.queryPoolSize = 256;
    cfg.seed = 19;
    const auto uniform =
        ArrivalGenerator(cfg, Algo::Btree, DatasetId::BTree10k)
            .generate(8000);
    cfg.queryDist = QueryDist::Zipf;
    cfg.zipfExponent = 1.0;
    const auto zipf =
        ArrivalGenerator(cfg, Algo::Btree, DatasetId::BTree10k)
            .generate(8000);

    auto head_share = [](const std::vector<Request> &s) {
        std::size_t head = 0;
        for (const Request &r : s)
            head += r.queryId < 8 ? 1 : 0;
        return static_cast<double>(head) /
               static_cast<double>(s.size());
    };
    // Rank == id: the 8 most popular queries carry far more of a Zipf
    // stream than their 8/256 uniform share.
    EXPECT_LT(head_share(uniform), 0.07);
    EXPECT_GT(head_share(zipf), 3.0 * head_share(uniform));
    for (const Request &r : zipf)
        EXPECT_LT(r.queryId, cfg.queryPoolSize);
}

} // namespace
} // namespace hsu::serve
