/**
 * @file
 * Schedule recording on the real serving loop: logs recorded by
 * serve::Server lint clean under every SV/CH rule, attaching the
 * recorder does not perturb the served results, and the recorded log
 * is bit-identical across simulation thread counts (recording happens
 * only on the event-loop thread).
 */

#include <gtest/gtest.h>

#include "analysis/schedule_lint.hh"
#include "serve/server.hh"

namespace hsu::serve
{
namespace
{

ServerConfig
smallConfig(unsigned instances = 2)
{
    ServerConfig cfg;
    cfg.gpu.numSms = 2;
    cfg.gpu.finalize();
    cfg.numInstances = instances;
    cfg.pipeline.batch.maxBatch = 8;
    cfg.pipeline.batch.maxWaitCycles = 20'000;
    cfg.queryPoolSize = 64;
    return cfg;
}

std::vector<Request>
stream(Algo algo, DatasetId dataset, double rate_per_cycle,
       std::size_t count, Cycle deadline = 0)
{
    ArrivalConfig arr;
    arr.ratePerCycle = rate_per_cycle;
    arr.queryPoolSize = 64;
    arr.deadlineCycles = deadline;
    arr.queryDist = QueryDist::Zipf; // repeats exercise the cache
    arr.seed = 21;
    return ArrivalGenerator(arr, algo, dataset).generate(count);
}

void
expectSameReport(const ServeReport &a, const ServeReport &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.shedAdmission, b.shedAdmission);
    EXPECT_EQ(a.shedExpired, b.shedExpired);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.lastCompletionCycle, b.lastCompletionCycle);
    EXPECT_DOUBLE_EQ(a.latencyCycles.sum(), b.latencyCycles.sum());
}

void
expectSameLog(const ScheduleLog &a, const ScheduleLog &b)
{
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        const ScheduleEvent &x = a.events[i];
        const ScheduleEvent &y = b.events[i];
        EXPECT_EQ(x.cycle, y.cycle) << "event " << i;
        EXPECT_EQ(x.a, y.a) << "event " << i;
        EXPECT_EQ(x.b, y.b) << "event " << i;
        EXPECT_EQ(x.c, y.c) << "event " << i;
        EXPECT_EQ(x.lane, y.lane) << "event " << i;
        EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind))
            << "event " << i;
    }
}

TEST(ScheduleLog, ServerLogLintsCleanAcrossPolicies)
{
    // Tight watermarks + deadlines: the log must contain queued, shed,
    // expired, and degraded decisions and still satisfy every rule.
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 2.0e-3, 96, 200'000);
    for (const BatchPolicyKind policy :
         {BatchPolicyKind::Fifo, BatchPolicyKind::Coherent}) {
        for (const bool cached : {false, true}) {
            ServerConfig cfg = smallConfig();
            cfg.pipeline.policy = policy;
            cfg.pipeline.degrade.highWater = 8;
            cfg.pipeline.degrade.shedWater = 24;
            if (cached) {
                cfg.pipeline.cache.capacity = 8;
                cfg.pipeline.cache.mode = CacheMode::Tolerant;
            }
            ScheduleLog log;
            cfg.scheduleLog = &log;
            Server server(Algo::Btree, DatasetId::BTree10k, cfg);
            server.run(reqs);

            EXPECT_GT(log.events.size(), reqs.size());
            const LintReport report = lintScheduleLog(log);
            EXPECT_TRUE(report.clean())
                << toString(policy) << (cached ? "/cache" : "")
                << ":\n"
                << report.str();
        }
    }
}

TEST(ScheduleLog, RecorderDoesNotPerturbServing)
{
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 1.0e-4, 64);
    ServerConfig cfg = smallConfig();
    cfg.pipeline.cache.capacity = 8;
    cfg.pipeline.cache.mode = CacheMode::Tolerant;
    Server plain(Algo::Btree, DatasetId::BTree10k, cfg);
    const ServeReport without = plain.run(reqs);

    ScheduleLog log;
    cfg.scheduleLog = &log;
    Server recorded(Algo::Btree, DatasetId::BTree10k, cfg);
    const ServeReport with = recorded.run(reqs);

    expectSameReport(without, with);
    EXPECT_FALSE(log.events.empty());
}

TEST(ScheduleLog, LogBitIdenticalAcrossJobs)
{
    // Recording happens only on the event-loop thread, so the log —
    // not just the report — must not depend on the pool width.
    const auto reqs =
        stream(Algo::Ggnn, DatasetId::Sift10k, 1.0e-3, 48);
    ServerConfig cfg = smallConfig(2);
    cfg.pipeline.cache.capacity = 8;
    cfg.pipeline.cache.mode = CacheMode::Tolerant;
    cfg.pipeline.degrade.highWater = 4;
    cfg.pipeline.degrade.degradedKnobs = ServeKnobs{8, 4};

    ScheduleLog serialLog;
    cfg.jobs = 1;
    cfg.scheduleLog = &serialLog;
    Server serial(Algo::Ggnn, DatasetId::Sift10k, cfg);
    const ServeReport rep1 = serial.run(reqs);

    ScheduleLog parallelLog;
    cfg.jobs = 4;
    cfg.scheduleLog = &parallelLog;
    Server parallel(Algo::Ggnn, DatasetId::Sift10k, cfg);
    const ServeReport rep4 = parallel.run(reqs);

    expectSameReport(rep1, rep4);
    expectSameLog(serialLog, parallelLog);
    EXPECT_TRUE(lintScheduleLog(parallelLog).clean())
        << lintScheduleLog(parallelLog).str();
}

} // namespace
} // namespace hsu::serve
