/**
 * @file
 * Dynamic-batcher invariants: FIFO order, size cap, age trigger,
 * deadline handling.
 */

#include <gtest/gtest.h>

#include "serve/batcher.hh"

namespace hsu::serve
{
namespace
{

Request
makeReq(std::uint64_t id, Cycle arrival,
        Cycle deadline = kNeverCycle)
{
    Request r;
    r.id = id;
    r.arrivalCycle = arrival;
    r.queryId = static_cast<std::uint32_t>(id % 64);
    r.deadlineCycle = deadline;
    return r;
}

TEST(Batcher, SizeTriggerAndCap)
{
    BatchPolicy policy;
    policy.maxBatch = 4;
    policy.maxWaitCycles = 1'000'000;
    DynamicBatcher b(policy);

    for (std::uint64_t i = 0; i < 10; ++i) {
        b.push(makeReq(i, 100 + i));
        // Ready exactly when a full batch is pending.
        EXPECT_EQ(b.batchReady(100 + i), i + 1 >= policy.maxBatch);
    }
    std::vector<Request> expired;
    const auto batch = b.popBatch(200, expired);
    EXPECT_EQ(batch.size(), policy.maxBatch);
    EXPECT_TRUE(expired.empty());
    EXPECT_EQ(b.pending(), 6u);
}

TEST(Batcher, FifoNeverReorders)
{
    BatchPolicy policy;
    policy.maxBatch = 8;
    DynamicBatcher b(policy);
    for (std::uint64_t i = 0; i < 20; ++i)
        b.push(makeReq(i, i * 10));

    std::uint64_t expect = 0;
    std::vector<Request> expired;
    while (b.pending() > 0) {
        for (const Request &r : b.popBatch(10'000, expired))
            EXPECT_EQ(r.id, expect++);
    }
    EXPECT_EQ(expect, 20u);
    EXPECT_TRUE(expired.empty());
}

TEST(Batcher, AgeTriggerForcesPartialBatch)
{
    BatchPolicy policy;
    policy.maxBatch = 32;
    policy.maxWaitCycles = 500;
    DynamicBatcher b(policy);
    b.push(makeReq(0, 1000));
    b.push(makeReq(1, 1100));

    EXPECT_FALSE(b.batchReady(1400));      // oldest waited 400 < 500
    EXPECT_EQ(b.nextForceCycle(), 1500u);  // 1000 + maxWait
    EXPECT_TRUE(b.batchReady(1500));
    std::vector<Request> expired;
    const auto batch = b.popBatch(1500, expired);
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_EQ(b.pending(), 0u);
    EXPECT_EQ(b.nextForceCycle(), kNeverCycle);
}

TEST(Batcher, ExpiredRequestsDropAtPopNotSilently)
{
    BatchPolicy policy;
    policy.maxBatch = 4;
    DynamicBatcher b(policy);
    // Requests 0 and 2 expire before pop time; 1 and 3 survive.
    b.push(makeReq(0, 100, 150));
    b.push(makeReq(1, 110, 10'000));
    b.push(makeReq(2, 120, 180));
    b.push(makeReq(3, 130, 10'000));

    std::vector<Request> expired;
    const auto batch = b.popBatch(200, expired);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].id, 1u);
    EXPECT_EQ(batch[1].id, 3u);
    ASSERT_EQ(expired.size(), 2u);
    EXPECT_EQ(expired[0].id, 0u);
    EXPECT_EQ(expired[1].id, 2u);
    // Every pushed request was accounted for, none vanished.
    EXPECT_EQ(batch.size() + expired.size(), 4u);
}

TEST(Batcher, DeadlineExactlyAtNowStillServes)
{
    BatchPolicy policy;
    policy.maxBatch = 2;
    DynamicBatcher b(policy);
    b.push(makeReq(0, 100, 200)); // deadline == now: not yet past
    b.push(makeReq(1, 110, 199)); // strictly before now: expired
    std::vector<Request> expired;
    const auto batch = b.popBatch(200, expired);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].id, 0u);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].id, 1u);
}

TEST(Batcher, AllExpiredYieldsEmptyBatch)
{
    BatchPolicy policy;
    policy.maxBatch = 8;
    policy.maxWaitCycles = 100;
    DynamicBatcher b(policy);
    for (std::uint64_t i = 0; i < 3; ++i)
        b.push(makeReq(i, 10, 50));
    EXPECT_TRUE(b.batchReady(1000));
    std::vector<Request> expired;
    const auto batch = b.popBatch(1000, expired);
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(expired.size(), 3u);
    EXPECT_EQ(b.pending(), 0u);
}

} // namespace
} // namespace hsu::serve
