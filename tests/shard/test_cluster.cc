/**
 * @file
 * Cluster-server semantics: a 1x1 cluster with a zero-cost link
 * reproduces the single-instance server bit-for-bit, reports are
 * bit-identical across HSU_JOBS and HSU_SIM_JOBS, request accounting
 * balances under overload and shedding, the link model shifts the
 * latency distribution, and the cluster-level queue-wait histogram is
 * the exact merge of the per-shard ones.
 */

#include <gtest/gtest.h>

#include "serve/server.hh"
#include "shard/cluster.hh"

namespace hsu::shard
{
namespace
{

using serve::ArrivalConfig;
using serve::ArrivalGenerator;
using serve::Request;
using serve::ServeReport;
using serve::Server;
using serve::ServerConfig;

constexpr std::uint32_t kPool = 64;

ClusterConfig
smallCluster(unsigned shards, unsigned replicas)
{
    ClusterConfig cfg;
    cfg.gpu.numSms = 2;
    cfg.gpu.finalize();
    cfg.numShards = shards;
    cfg.replicasPerShard = replicas;
    cfg.pipeline.batch.maxBatch = 8;
    cfg.pipeline.batch.maxWaitCycles = 20'000;
    cfg.queryPoolSize = kPool;
    return cfg;
}

std::vector<Request>
stream(Algo algo, DatasetId dataset, double rate_per_cycle,
       std::size_t count, Cycle deadline = 0, std::uint64_t seed = 21)
{
    ArrivalConfig arr;
    arr.ratePerCycle = rate_per_cycle;
    arr.queryPoolSize = kPool;
    arr.deadlineCycles = deadline;
    arr.seed = seed;
    return ArrivalGenerator(arr, algo, dataset).generate(count);
}

void
expectSameReport(const ClusterReport &a, const ClusterReport &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.partialAnswers, b.partialAnswers);
    EXPECT_EQ(a.shedRequests, b.shedRequests);
    EXPECT_EQ(a.subqueries, b.subqueries);
    EXPECT_EQ(a.lastCompletionCycle, b.lastCompletionCycle);
    EXPECT_EQ(a.latencyCycles.count(), b.latencyCycles.count());
    EXPECT_DOUBLE_EQ(a.latencyCycles.sum(), b.latencyCycles.sum());
    EXPECT_DOUBLE_EQ(a.latencyCycles.max(), b.latencyCycles.max());
    for (const double p : {50.0, 95.0, 99.0}) {
        EXPECT_DOUBLE_EQ(a.latencyCycles.percentile(p),
                         b.latencyCycles.percentile(p));
    }
    ASSERT_EQ(a.shards.size(), b.shards.size());
    for (std::size_t s = 0; s < a.shards.size(); ++s) {
        EXPECT_EQ(a.shards[s].subqueries, b.shards[s].subqueries);
        EXPECT_EQ(a.shards[s].batches, b.shards[s].batches);
        EXPECT_EQ(a.shards[s].shedAdmission,
                  b.shards[s].shedAdmission);
        EXPECT_EQ(a.shards[s].shedExpired, b.shards[s].shedExpired);
        EXPECT_EQ(a.shards[s].degraded, b.shards[s].degraded);
        EXPECT_DOUBLE_EQ(a.shards[s].queueWaitCycles.sum(),
                         b.shards[s].queueWaitCycles.sum());
    }
}

TEST(Cluster, OneByOneMatchesSingleServer)
{
    // A 1-shard, 1-replica cluster with a zero-cost interconnect and
    // zero merge cost is the single-instance server: same batches,
    // same cycles, same histograms.
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 5.0e-5, 96);

    ServerConfig scfg;
    scfg.gpu.numSms = 2;
    scfg.gpu.finalize();
    scfg.numInstances = 1;
    scfg.pipeline.batch.maxBatch = 8;
    scfg.pipeline.batch.maxWaitCycles = 20'000;
    scfg.queryPoolSize = kPool;
    Server server(Algo::Btree, DatasetId::BTree10k, scfg);
    const ServeReport single = server.run(reqs);

    ClusterServer cluster(Algo::Btree, DatasetId::BTree10k,
                          smallCluster(1, 1));
    const ClusterReport sharded = cluster.run(reqs);

    EXPECT_EQ(sharded.offered, single.offered);
    EXPECT_EQ(sharded.completed, single.completed);
    EXPECT_EQ(sharded.subqueries, single.offered); // fan-out 1
    EXPECT_EQ(sharded.shards.size(), 1u);
    EXPECT_EQ(sharded.shards[0].batches, single.batches);
    EXPECT_EQ(sharded.shards[0].shedAdmission, single.shedAdmission);
    EXPECT_EQ(sharded.shards[0].shedExpired, single.shedExpired);
    EXPECT_EQ(sharded.shards[0].degraded, single.degraded);
    EXPECT_EQ(sharded.lastCompletionCycle,
              single.lastCompletionCycle);
    EXPECT_EQ(sharded.latencyCycles.count(),
              single.latencyCycles.count());
    EXPECT_DOUBLE_EQ(sharded.latencyCycles.sum(),
                     single.latencyCycles.sum());
    EXPECT_DOUBLE_EQ(sharded.latencyCycles.max(),
                     single.latencyCycles.max());
    for (const double p : {50.0, 95.0, 99.0}) {
        EXPECT_DOUBLE_EQ(sharded.latencyCycles.percentile(p),
                         single.latencyCycles.percentile(p));
        EXPECT_DOUBLE_EQ(sharded.queueWaitCycles.percentile(p),
                         single.queueWaitCycles.percentile(p));
    }
}

TEST(Cluster, BitIdenticalAcrossJobsAndSimJobs)
{
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 1.0e-4, 64);
    ClusterConfig cfg = smallCluster(2, 2);
    cfg.link.latencyCycles = 500;
    cfg.mergeCyclesPerShard = 100;

    cfg.jobs = 1;
    cfg.gpu.simJobs = 1;
    ClusterServer serial(Algo::Btree, DatasetId::BTree10k, cfg);
    const ClusterReport rep1 = serial.run(reqs);

    cfg.jobs = 4;
    cfg.gpu.simJobs = 4;
    ClusterServer parallel(Algo::Btree, DatasetId::BTree10k, cfg);
    const ClusterReport rep4 = parallel.run(reqs);
    expectSameReport(rep1, rep4);

    // And across repeated runs of the same cluster.
    const ClusterReport again = parallel.run(reqs);
    expectSameReport(rep4, again);
}

TEST(Cluster, BroadcastFanoutAndAccounting)
{
    // Radius queries on a spatial partitioning prune by shard bounds;
    // every request still resolves exactly once.
    const auto reqs =
        stream(Algo::Bvhnn, DatasetId::Random10k, 5.0e-5, 64);
    ClusterServer cluster(Algo::Bvhnn, DatasetId::Random10k,
                          smallCluster(4, 1));
    const ClusterReport rep = cluster.run(reqs);

    EXPECT_EQ(rep.offered, 64u);
    EXPECT_EQ(rep.completed + rep.shedRequests, rep.offered);
    EXPECT_EQ(rep.fanout.count(), rep.offered);
    EXPECT_LE(rep.fanout.max(), 4.0);
    // Every scattered sub-query was delivered to some shard.
    std::uint64_t delivered = 0;
    for (const ShardReport &s : rep.shards)
        delivered += s.subqueries;
    EXPECT_EQ(delivered, rep.subqueries);
    // Cluster queue-wait is the merge of the shard histograms.
    std::uint64_t shard_waits = 0;
    for (const ShardReport &s : rep.shards)
        shard_waits += s.queueWaitCycles.count();
    EXPECT_EQ(rep.queueWaitCycles.count(), shard_waits);
}

TEST(Cluster, KeyLookupsRouteToOneShard)
{
    for (const PartitionPolicy policy :
         {PartitionPolicy::Spatial, PartitionPolicy::Hash}) {
        ClusterConfig cfg = smallCluster(4, 1);
        cfg.partition = policy;
        const auto reqs =
            stream(Algo::Btree, DatasetId::BTree10k, 5.0e-5, 64);
        ClusterServer cluster(Algo::Btree, DatasetId::BTree10k, cfg);
        const ClusterReport rep = cluster.run(reqs);
        EXPECT_EQ(rep.completed + rep.shedRequests, rep.offered);
        EXPECT_LE(rep.fanout.max(), 1.0);
        EXPECT_EQ(rep.subqueries, rep.offered);
    }
}

TEST(Cluster, HotShardSheddingBalances)
{
    // Saturate four shards behind tiny queues: admission shedding
    // kicks in per lane, and the request accounting still balances —
    // a request with every sub-query shed is reported shed, one with
    // some answers is a partial completion.
    ClusterConfig cfg = smallCluster(4, 1);
    cfg.pipeline.degrade.shedWater = 4;
    cfg.pipeline.degrade.highWater = 2;
    const auto reqs =
        stream(Algo::Bvhnn, DatasetId::Random10k, 1.0e-2, 128);
    ClusterServer cluster(Algo::Bvhnn, DatasetId::Random10k, cfg);
    const ClusterReport rep = cluster.run(reqs);

    std::uint64_t shed = 0;
    for (const ShardReport &s : rep.shards)
        shed += s.shedAdmission;
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(rep.completed + rep.shedRequests, rep.offered);
    EXPECT_GE(rep.completed, rep.partialAnswers);
}

TEST(Cluster, ReplicasAbsorbLoad)
{
    // Same overload, 1 vs 2 replicas per shard: the extra replica
    // strictly reduces admission shedding.
    ClusterConfig one = smallCluster(2, 1);
    one.pipeline.degrade.shedWater = 4;
    ClusterConfig two = smallCluster(2, 2);
    two.pipeline.degrade.shedWater = 4;
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 5.0e-2, 128);

    const ClusterReport r1 =
        ClusterServer(Algo::Btree, DatasetId::BTree10k, one).run(reqs);
    const ClusterReport r2 =
        ClusterServer(Algo::Btree, DatasetId::BTree10k, two).run(reqs);
    std::uint64_t shed1 = 0, shed2 = 0;
    for (const ShardReport &s : r1.shards)
        shed1 += s.shedAdmission;
    for (const ShardReport &s : r2.shards)
        shed2 += s.shedAdmission;
    EXPECT_LT(shed2, shed1);
    EXPECT_GE(r2.completed, r1.completed);
}

TEST(Cluster, LoadBalancePoliciesAreDeterministic)
{
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 1.0e-3, 96);
    for (const LoadBalance lb : {LoadBalance::RoundRobin,
                                 LoadBalance::LeastOutstanding}) {
        ClusterConfig cfg = smallCluster(2, 2);
        cfg.balance = lb;
        ClusterServer a(Algo::Btree, DatasetId::BTree10k, cfg);
        ClusterServer b(Algo::Btree, DatasetId::BTree10k, cfg);
        expectSameReport(a.run(reqs), b.run(reqs));
    }
}

TEST(Cluster, LinkLatencyShiftsLatencyDistribution)
{
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 2.0e-5, 48);
    ClusterConfig near = smallCluster(2, 1);
    ClusterConfig far = smallCluster(2, 1);
    far.link.latencyCycles = 10'000;
    far.link.bytesPerCycle = 0.01; // + bytes / 0.01 cycles per hop

    const ClusterReport fast =
        ClusterServer(Algo::Btree, DatasetId::BTree10k, near)
            .run(reqs);
    const ClusterReport slow =
        ClusterServer(Algo::Btree, DatasetId::BTree10k, far).run(reqs);
    ASSERT_GT(fast.completed, 0u);
    ASSERT_GT(slow.completed, 0u);
    // Every request pays at least scatter + gather extra.
    EXPECT_GT(slow.latencyCycles.percentile(50.0),
              fast.latencyCycles.percentile(50.0));
}

TEST(Cluster, DeadlineExpiryResolvesJoins)
{
    ClusterConfig cfg = smallCluster(2, 1);
    cfg.pipeline.degrade.shedWater = 1'000'000;
    const auto reqs = stream(Algo::Btree, DatasetId::BTree10k, 1.0e-2,
                             128, /*deadline=*/5'000);
    ClusterServer cluster(Algo::Btree, DatasetId::BTree10k, cfg);
    const ClusterReport rep = cluster.run(reqs);

    std::uint64_t expired = 0;
    for (const ShardReport &s : rep.shards)
        expired += s.shedExpired;
    EXPECT_GT(expired, 0u);
    EXPECT_EQ(rep.completed + rep.shedRequests, rep.offered);
}

TEST(Cluster, CoherentPolicyBitIdenticalAcrossJobsAndSimJobs)
{
    // The coherence sort happens per-lane AFTER routing, on data that
    // is a pure function of the batch contents — so the report must
    // stay bit-identical whatever HSU_JOBS / HSU_SIM_JOBS say.
    const auto reqs =
        stream(Algo::Bvhnn, DatasetId::Random10k, 1.0e-3, 96);
    ClusterConfig cfg = smallCluster(2, 2);
    cfg.pipeline.policy = serve::BatchPolicyKind::Coherent;
    cfg.link.latencyCycles = 500;
    cfg.mergeCyclesPerShard = 100;
    cfg.jobs = 1;
    cfg.gpu.simJobs = 1;
    const ClusterReport r1 =
        ClusterServer(Algo::Bvhnn, DatasetId::Random10k, cfg)
            .run(reqs);
    cfg.jobs = 4;
    cfg.gpu.simJobs = 4;
    ClusterServer parallel(Algo::Bvhnn, DatasetId::Random10k, cfg);
    const ClusterReport r4 = parallel.run(reqs);
    expectSameReport(r1, r4);
    expectSameReport(r4, parallel.run(reqs));
}

TEST(Cluster, RouterCacheAnswersRepeatQueries)
{
    // A router-level answer cache intercepts repeats of popular
    // queries before they fan out: under a Zipf stream the cached
    // cluster completes the same requests while issuing strictly
    // fewer sub-queries.
    ArrivalConfig arr;
    arr.ratePerCycle = 1.0e-4;
    arr.queryPoolSize = kPool;
    arr.queryDist = serve::QueryDist::Zipf;
    arr.zipfExponent = 1.2;
    arr.seed = 33;
    const auto reqs =
        ArrivalGenerator(arr, Algo::Bvhnn, DatasetId::Random10k)
            .generate(128);

    ClusterConfig plain = smallCluster(2, 1);
    const ClusterReport base =
        ClusterServer(Algo::Bvhnn, DatasetId::Random10k, plain)
            .run(reqs);
    ClusterConfig cached = smallCluster(2, 1);
    cached.pipeline.cache.capacity = 32;
    const ClusterReport rep =
        ClusterServer(Algo::Bvhnn, DatasetId::Random10k, cached)
            .run(reqs);

    EXPECT_GT(rep.cacheHits, 0u);
    EXPECT_EQ(base.cacheHits, 0u);
    // Light load: nothing sheds either way, so completions match.
    EXPECT_EQ(rep.completed, base.completed);
    EXPECT_EQ(rep.completed + rep.shedRequests, rep.offered);
    // Hits never reach the shards.
    EXPECT_LT(rep.subqueries, base.subqueries);
    EXPECT_GT(rep.cacheHitRate(), 0.0);
}

} // namespace
} // namespace hsu::shard
