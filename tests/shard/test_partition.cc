/**
 * @file
 * Partitioner invariants: every base element lands on exactly one
 * shard, spatial slices are contiguous/bounded, hash slices follow
 * hashShardOf, and partitionings are pure functions of their key.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "shard/partition.hh"

namespace hsu::shard
{
namespace
{

const DatasetId kDatasets[] = {DatasetId::Sift10k, DatasetId::Random10k,
                               DatasetId::BTree10k};
const PartitionPolicy kPolicies[] = {PartitionPolicy::Spatial,
                                     PartitionPolicy::Hash};

std::size_t
baseElements(DatasetId id)
{
    const DatasetInfo &info = datasetInfo(id);
    if (info.kind == DatasetKind::Keys)
        return generateKeys(info).size();
    return generatePoints(info).size();
}

TEST(Partition, DisjointCover)
{
    for (const DatasetId id : kDatasets) {
        const std::size_t n = baseElements(id);
        for (const PartitionPolicy policy : kPolicies) {
            for (const unsigned shards : {1u, 2u, 4u}) {
                const Partitioning part =
                    partitionDataset(id, policy, shards);
                EXPECT_EQ(part.numShards(), shards);
                EXPECT_EQ(part.totalElements(), n);
                std::set<std::uint32_t> seen;
                for (const ShardSlice &slice : part.shards) {
                    EXPECT_TRUE(std::is_sorted(slice.ids.begin(),
                                               slice.ids.end()));
                    for (const std::uint32_t e : slice.ids)
                        EXPECT_TRUE(seen.insert(e).second)
                            << "element " << e << " on two shards";
                }
                EXPECT_EQ(seen.size(), n);
            }
        }
    }
}

TEST(Partition, SpatialPopulationsBalanced)
{
    for (const DatasetId id : kDatasets) {
        const Partitioning part =
            partitionDataset(id, PartitionPolicy::Spatial, 4);
        std::size_t lo = part.shards[0].ids.size();
        std::size_t hi = lo;
        for (const ShardSlice &slice : part.shards) {
            lo = std::min(lo, slice.ids.size());
            hi = std::max(hi, slice.ids.size());
        }
        EXPECT_LE(hi - lo, 1u);
    }
}

TEST(Partition, SpatialKeyRangesDisjointAscending)
{
    const Partitioning part =
        partitionDataset(DatasetId::BTree10k, PartitionPolicy::Spatial,
                         4);
    const std::vector<std::uint32_t> keys =
        generateKeys(datasetInfo(DatasetId::BTree10k));
    for (unsigned s = 0; s < part.numShards(); ++s) {
        const ShardSlice &slice = part.shards[s];
        ASSERT_FALSE(slice.ids.empty());
        EXPECT_LE(slice.keyLo, slice.keyHi);
        // Every owned key lies inside the advertised range.
        for (const std::uint32_t rank : slice.ids) {
            EXPECT_GE(keys[rank], slice.keyLo);
            EXPECT_LE(keys[rank], slice.keyHi);
        }
        if (s > 0)
            EXPECT_GT(slice.keyLo, part.shards[s - 1].keyHi);
    }
}

TEST(Partition, SpatialBoundsContainPoints)
{
    const DatasetInfo &info = datasetInfo(DatasetId::Random10k);
    const PointSet points = generatePoints(info);
    const Partitioning part = partitionDataset(
        DatasetId::Random10k, PartitionPolicy::Spatial, 4);
    for (const ShardSlice &slice : part.shards) {
        for (const std::uint32_t id : slice.ids) {
            const Vec3 p = points.vec3(id);
            EXPECT_EQ(slice.bounds.distance2(p), 0.0f);
        }
    }
}

TEST(Partition, HashSlicesFollowHashShardOf)
{
    const DatasetInfo &info = datasetInfo(DatasetId::Random10k);
    const Partitioning part = partitionDataset(
        DatasetId::Random10k, PartitionPolicy::Hash, 4);
    for (unsigned s = 0; s < part.numShards(); ++s) {
        for (const std::uint32_t id : part.shards[s].ids)
            EXPECT_EQ(hashShardOf(info, id, 4), s);
    }
    // Keys datasets hash the key value, not the rank.
    const DatasetInfo &kinfo = datasetInfo(DatasetId::BTree10k);
    const std::vector<std::uint32_t> keys = generateKeys(kinfo);
    const Partitioning kpart =
        partitionDataset(DatasetId::BTree10k, PartitionPolicy::Hash, 4);
    for (unsigned s = 0; s < kpart.numShards(); ++s) {
        for (const std::uint32_t rank : kpart.shards[s].ids)
            EXPECT_EQ(hashShardOf(kinfo, keys[rank], 4), s);
    }
}

TEST(Partition, HashPopulationsRoughlyBalanced)
{
    for (const DatasetId id : kDatasets) {
        const Partitioning part =
            partitionDataset(id, PartitionPolicy::Hash, 4);
        const double mean =
            static_cast<double>(part.totalElements()) / 4.0;
        for (const ShardSlice &slice : part.shards) {
            EXPECT_GT(static_cast<double>(slice.ids.size()),
                      0.8 * mean);
            EXPECT_LT(static_cast<double>(slice.ids.size()),
                      1.2 * mean);
        }
    }
}

TEST(Partition, PureFunctionOfKey)
{
    for (const PartitionPolicy policy : kPolicies) {
        const Partitioning a =
            partitionDataset(DatasetId::Random10k, policy, 4);
        const Partitioning b =
            partitionDataset(DatasetId::Random10k, policy, 4);
        ASSERT_EQ(a.numShards(), b.numShards());
        for (unsigned s = 0; s < a.numShards(); ++s)
            EXPECT_EQ(a.shards[s].ids, b.shards[s].ids);
    }
}

} // namespace
} // namespace hsu::shard
