/**
 * @file
 * Schedule recording on the real cluster: logs recorded by
 * shard::ClusterServer (router + per-lane pipelines) lint clean under
 * the full SV/SH/CH rule set, attaching the recorder does not perturb
 * the cluster report, and the recorded log is bit-identical across
 * HSU_JOBS / HSU_SIM_JOBS.
 */

#include <gtest/gtest.h>

#include "analysis/schedule_lint.hh"
#include "shard/cluster.hh"

namespace hsu::shard
{
namespace
{

using serve::ArrivalConfig;
using serve::ArrivalGenerator;
using serve::Request;

constexpr std::uint32_t kPool = 64;

ClusterConfig
smallCluster(unsigned shards, unsigned replicas)
{
    ClusterConfig cfg;
    cfg.gpu.numSms = 2;
    cfg.gpu.finalize();
    cfg.numShards = shards;
    cfg.replicasPerShard = replicas;
    cfg.pipeline.batch.maxBatch = 8;
    cfg.pipeline.batch.maxWaitCycles = 20'000;
    cfg.queryPoolSize = kPool;
    cfg.link.latencyCycles = 500;
    cfg.link.bytesPerCycle = 16.0;
    cfg.mergeCyclesPerShard = 100;
    return cfg;
}

std::vector<Request>
stream(Algo algo, DatasetId dataset, double rate_per_cycle,
       std::size_t count, Cycle deadline = 0)
{
    ArrivalConfig arr;
    arr.ratePerCycle = rate_per_cycle;
    arr.queryPoolSize = kPool;
    arr.deadlineCycles = deadline;
    arr.queryDist = serve::QueryDist::Zipf;
    arr.seed = 21;
    return ArrivalGenerator(arr, algo, dataset).generate(count);
}

void
expectSameReport(const ClusterReport &a, const ClusterReport &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.shedRequests, b.shedRequests);
    EXPECT_EQ(a.subqueries, b.subqueries);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.lastCompletionCycle, b.lastCompletionCycle);
    EXPECT_DOUBLE_EQ(a.latencyCycles.sum(), b.latencyCycles.sum());
}

void
expectSameLog(const ScheduleLog &a, const ScheduleLog &b)
{
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        const ScheduleEvent &x = a.events[i];
        const ScheduleEvent &y = b.events[i];
        EXPECT_EQ(x.cycle, y.cycle) << "event " << i;
        EXPECT_EQ(x.a, y.a) << "event " << i;
        EXPECT_EQ(x.b, y.b) << "event " << i;
        EXPECT_EQ(x.c, y.c) << "event " << i;
        EXPECT_EQ(x.lane, y.lane) << "event " << i;
        EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind))
            << "event " << i;
    }
}

TEST(ScheduleCluster, ClusterLogLintsCleanAcrossPolicies)
{
    // Router cache + real link/merge costs + tight lane watermarks:
    // the log carries routed, scattered, gathered, shed, and cached
    // decisions for the SH and CH families.
    const auto reqs =
        stream(Algo::Bvhnn, DatasetId::Random10k, 1.0e-3, 96);
    for (const PartitionPolicy policy :
         {PartitionPolicy::Spatial, PartitionPolicy::Hash}) {
        ClusterConfig cfg = smallCluster(2, 2);
        cfg.partition = policy;
        cfg.pipeline.policy = serve::BatchPolicyKind::Coherent;
        cfg.pipeline.degrade.highWater = 8;
        cfg.pipeline.degrade.shedWater = 24;
        cfg.pipeline.cache.capacity = 8;
        ScheduleLog log;
        cfg.scheduleLog = &log;
        ClusterServer cluster(Algo::Bvhnn, DatasetId::Random10k, cfg);
        cluster.run(reqs);

        EXPECT_GT(log.events.size(), reqs.size());
        const LintReport report = lintScheduleLog(log);
        EXPECT_TRUE(report.clean())
            << toString(policy) << ":\n"
            << report.str();
    }
}

TEST(ScheduleCluster, RecorderDoesNotPerturbCluster)
{
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 1.0e-4, 64);
    ClusterConfig cfg = smallCluster(2, 2);
    cfg.pipeline.cache.capacity = 8;
    ClusterServer plain(Algo::Btree, DatasetId::BTree10k, cfg);
    const ClusterReport without = plain.run(reqs);

    ScheduleLog log;
    cfg.scheduleLog = &log;
    ClusterServer recorded(Algo::Btree, DatasetId::BTree10k, cfg);
    const ClusterReport with = recorded.run(reqs);

    expectSameReport(without, with);
    EXPECT_FALSE(log.events.empty());
}

TEST(ScheduleCluster, LogBitIdenticalAcrossJobsAndSimJobs)
{
    const auto reqs =
        stream(Algo::Btree, DatasetId::BTree10k, 1.0e-3, 64);
    ClusterConfig cfg = smallCluster(2, 2);
    cfg.pipeline.cache.capacity = 8;

    ScheduleLog serialLog;
    cfg.jobs = 1;
    cfg.gpu.simJobs = 1;
    cfg.scheduleLog = &serialLog;
    ClusterServer serial(Algo::Btree, DatasetId::BTree10k, cfg);
    const ClusterReport rep1 = serial.run(reqs);

    ScheduleLog parallelLog;
    cfg.jobs = 4;
    cfg.gpu.simJobs = 4;
    cfg.scheduleLog = &parallelLog;
    ClusterServer parallel(Algo::Btree, DatasetId::BTree10k, cfg);
    const ClusterReport rep4 = parallel.run(reqs);

    expectSameReport(rep1, rep4);
    expectSameLog(serialLog, parallelLog);
    EXPECT_TRUE(lintScheduleLog(parallelLog).clean())
        << lintScheduleLog(parallelLog).str();
}

} // namespace
} // namespace hsu::shard
