/**
 * @file
 * Scatter-gather merge correctness: for every index family and both
 * partition policies, the merged sharded answer set is bit-identical
 * to an independent unsharded oracle at N in {1, 2, 4} shards. This
 * pins, in one equality, that the partitioner loses/duplicates no
 * element, that router pruning never skips a shard holding part of
 * the answer, that the per-shard kernels are exact over their slices,
 * and that the merge's (dist2, global id) order reconstructs the
 * global answer.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "shard/answers.hh"

namespace hsu::shard
{
namespace
{

constexpr std::size_t kPool = 64;

std::vector<std::uint32_t>
allPoolQueries()
{
    std::vector<std::uint32_t> ids(kPool);
    std::iota(ids.begin(), ids.end(), 0u);
    return ids;
}

DatasetId
datasetFor(Algo algo)
{
    switch (algo) {
      case Algo::Ggnn:
        return DatasetId::Sift10k;
      case Algo::Flann:
      case Algo::Bvhnn:
        return DatasetId::Random10k;
      case Algo::Btree:
        return DatasetId::BTree10k;
    }
    hsu_panic("unknown algo");
}

class MergeGolden
    : public ::testing::TestWithParam<std::tuple<Algo, PartitionPolicy>>
{
};

TEST_P(MergeGolden, ShardedEqualsUnsharded)
{
    const auto [algo, policy] = GetParam();
    const DatasetId dataset = datasetFor(algo);
    const std::vector<std::uint32_t> queries = allPoolQueries();
    const AnswerSet golden =
        answerUnsharded(algo, dataset, queries, kPool);
    for (const unsigned shards : {1u, 2u, 4u}) {
        const AnswerSet merged = answerSharded(
            algo, dataset, policy, shards, queries, kPool);
        EXPECT_TRUE(merged == golden)
            << toString(algo) << " diverged at "
            << toString(policy) << " x" << shards;
    }
}

// toString(Algo) values contain '+'/'-', which gtest names disallow.
const char *const kAlgoNames[] = {"Ggnn", "Flann", "Bvhnn", "Btree"};

std::string
mergeGoldenName(
    const ::testing::TestParamInfo<std::tuple<Algo, PartitionPolicy>>
        &info)
{
    return std::string(
               kAlgoNames[static_cast<int>(std::get<0>(info.param))]) +
           "_" + toString(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, MergeGolden,
    ::testing::Combine(::testing::Values(Algo::Ggnn, Algo::Flann,
                                         Algo::Bvhnn, Algo::Btree),
                       ::testing::Values(PartitionPolicy::Spatial,
                                         PartitionPolicy::Hash)),
    mergeGoldenName);

TEST(Merge, TopKOrderIsTotal)
{
    // Two shards with interleaved distances and a cross-shard tie:
    // the merged order is (dist2, global id) regardless of input
    // arrangement.
    const std::vector<std::vector<Neighbor>> partials = {
        {{10, 0.25f}, {12, 0.5f}, {14, 0.5f}},
        {{3, 0.125f}, {13, 0.5f}},
    };
    const std::vector<Neighbor> merged = mergeTopK(partials, 4);
    ASSERT_EQ(merged.size(), 4u);
    EXPECT_EQ(merged[0].index, 3u);
    EXPECT_EQ(merged[1].index, 10u);
    EXPECT_EQ(merged[2].index, 12u); // 0.5 tie broken by global id
    EXPECT_EQ(merged[3].index, 13u);

    // Shard enumeration order must not matter.
    const std::vector<std::vector<Neighbor>> swapped = {partials[1],
                                                        partials[0]};
    const std::vector<Neighbor> remerged = mergeTopK(swapped, 4);
    for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].index, remerged[i].index);
        EXPECT_EQ(merged[i].dist2, remerged[i].dist2);
    }
}

TEST(Merge, RadiusHitPrefersNearestThenLowestId)
{
    const RadiusHit none{-1, 0.0f};
    EXPECT_EQ(mergeRadiusHits({none, none}).index, -1);
    EXPECT_EQ(mergeRadiusHits({none, {7, 0.5f}}).index, 7);
    EXPECT_EQ(mergeRadiusHits({{9, 0.25f}, {7, 0.5f}}).index, 9);
    EXPECT_EQ(mergeRadiusHits({{9, 0.5f}, {7, 0.5f}}).index, 7);
}

TEST(Merge, LookupsSingleOwner)
{
    EXPECT_EQ(mergeLookups({std::nullopt, std::nullopt}), std::nullopt);
    EXPECT_EQ(mergeLookups({std::nullopt, 42u}), 42u);
}

} // namespace
} // namespace hsu::shard
