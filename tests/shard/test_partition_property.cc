/**
 * @file
 * Property sweep over the partitioner: for every golden dataset
 * family x partition policy x shard count N in {1,2,4,8}, the shard
 * slices must be disjoint and cover the dataset (checked through the
 * SH001 fixed-function auditor so the CLI and tests share one
 * oracle), and populations must stay balanced — exactly for spatial
 * slices, within a hash-quality band for hashed ones.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/schedule_lint.hh"
#include "shard/partition.hh"

namespace hsu::shard
{
namespace
{

const DatasetId kDatasets[] = {DatasetId::Sift10k, DatasetId::Bunny,
                               DatasetId::Random10k,
                               DatasetId::BTree10k};
const PartitionPolicy kPolicies[] = {PartitionPolicy::Spatial,
                                     PartitionPolicy::Hash};
const unsigned kShardCounts[] = {1, 2, 4, 8};

std::string
caseName(DatasetId id, PartitionPolicy policy, unsigned n)
{
    return datasetInfo(id).abbr + "/" + toString(policy) + "/n" +
           std::to_string(n);
}

std::vector<std::vector<std::uint32_t>>
sliceIds(const Partitioning &part)
{
    std::vector<std::vector<std::uint32_t>> ids;
    ids.reserve(part.shards.size());
    for (const ShardSlice &slice : part.shards)
        ids.push_back(slice.ids);
    return ids;
}

TEST(PartitionProperty, EverySliceSetIsADisjointCover)
{
    for (const DatasetId id : kDatasets) {
        for (const PartitionPolicy policy : kPolicies) {
            for (const unsigned n : kShardCounts) {
                const Partitioning part =
                    partitionDataset(id, policy, n);
                const LintReport report = lintPartitionCoverage(
                    sliceIds(part), part.totalElements());
                EXPECT_TRUE(report.clean())
                    << caseName(id, policy, n) << ":\n"
                    << report.str();
            }
        }
    }
}

TEST(PartitionProperty, SpatialPopulationsBalanceExactly)
{
    // Spatial slices are contiguous runs of the sorted order: shard
    // populations may differ by at most one element.
    for (const DatasetId id : kDatasets) {
        for (const unsigned n : kShardCounts) {
            const Partitioning part =
                partitionDataset(id, PartitionPolicy::Spatial, n);
            std::size_t lo = part.shards[0].ids.size();
            std::size_t hi = lo;
            for (const ShardSlice &slice : part.shards) {
                lo = std::min(lo, slice.ids.size());
                hi = std::max(hi, slice.ids.size());
            }
            EXPECT_LE(hi - lo, 1u)
                << caseName(id, PartitionPolicy::Spatial, n);
        }
    }
}

TEST(PartitionProperty, HashPopulationsBalanceStatistically)
{
    // A content hash over 1k+ elements should land every shard within
    // a generous band around the mean — a systematic skew here means
    // the hash is correlated with the id/key distribution.
    for (const DatasetId id : kDatasets) {
        for (const unsigned n : kShardCounts) {
            const Partitioning part =
                partitionDataset(id, PartitionPolicy::Hash, n);
            const double mean =
                static_cast<double>(part.totalElements()) /
                static_cast<double>(n);
            for (const ShardSlice &slice : part.shards) {
                EXPECT_GT(static_cast<double>(slice.ids.size()),
                          0.7 * mean)
                    << caseName(id, PartitionPolicy::Hash, n);
                EXPECT_LT(static_cast<double>(slice.ids.size()),
                          1.3 * mean)
                    << caseName(id, PartitionPolicy::Hash, n);
            }
        }
    }
}

} // namespace
} // namespace hsu::shard
