/**
 * @file
 * RT/HSU unit timing tests: dispatch arbitration, operand gathering,
 * datapath streaming, per-warp ordering, multi-beat sequences, and
 * warp-buffer capacity effects.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/cache.hh"
#include "rtunit/rtunit.hh"

namespace hsu
{
namespace
{

struct RtFixture : public ::testing::Test
{
    StatGroup stats;
    CacheParams cparams{.name = "l1", .sizeBytes = 64 * 1024,
                        .assoc = 8, .lineBytes = 128, .hitLatency = 4,
                        .mshrEntries = 16, .mshrMergesPerEntry = 8,
                        .missQueueCapacity = 16};
    std::unique_ptr<Cache> l1;
    std::unique_ptr<RtUnit> rt;
    WarpTrace wt;
    std::uint64_t now = 0;

    void
    build(unsigned warp_buffer = 8)
    {
        l1 = std::make_unique<Cache>(cparams, stats);
        // Back the L1 with an always-accepting 20-cycle "L2".
        l1->setSendLower([this](std::uint64_t line, bool write,
                                std::uint64_t t) {
            if (!write)
                fills.emplace_back(t + 20, line);
            return true;
        });
        RtUnitParams rp;
        rp.warpBufferSize = warp_buffer;
        rt = std::make_unique<RtUnit>(rp, *l1, stats);
    }

    std::vector<std::pair<std::uint64_t, std::uint64_t>> fills;

    void
    tickAll(bool grant_rt = true)
    {
        // Deliver due fills.
        for (auto it = fills.begin(); it != fills.end();) {
            if (it->first <= now) {
                l1->fill(it->second, now);
                it = fills.erase(it);
            } else {
                ++it;
            }
        }
        l1->tick(now);
        rt->tick(grant_rt, now);
        ++now;
    }

    TraceOp
    makeOp(std::uint32_t mask, unsigned beats, unsigned bytes,
           std::uint64_t base)
    {
        TraceOp op;
        op.type = OpType::HsuOp;
        op.hsuOp = HsuOpcode::PointEuclid;
        op.hsuMode = HsuMode::Euclid;
        op.activeMask = mask;
        op.count = static_cast<std::uint16_t>(beats);
        op.bytesPerLane = static_cast<std::uint16_t>(bytes);
        op.addr.poolIndex = static_cast<std::int32_t>(wt.addrPool.size());
        for (unsigned l = 0; l < kWarpSize; ++l)
            wt.addrPool.push_back(base + l * 4096ull);
        return op;
    }
};

TEST_F(RtFixture, SingleInstructionCompletes)
{
    build();
    int done = 0;
    const TraceOp op = makeOp(0x1, 1, 64, 0x100000);
    ASSERT_TRUE(rt->tryDispatch(0, 0, wt, op, [&] { ++done; }, now));
    for (int i = 0; i < 200 && done == 0; ++i)
        tickAll();
    EXPECT_EQ(done, 1);
    EXPECT_TRUE(rt->drained());
    EXPECT_EQ(stats.get("rtu.completed"), 1.0);
}

TEST_F(RtFixture, OneDispatchPerCycle)
{
    build();
    const TraceOp op = makeOp(0x1, 1, 64, 0x100000);
    EXPECT_TRUE(rt->tryDispatch(0, 0, wt, op, nullptr, now));
    EXPECT_FALSE(rt->tryDispatch(1, 1, wt, op, nullptr, now));
    ++now;
    EXPECT_TRUE(rt->tryDispatch(1, 1, wt, op, nullptr, now));
    EXPECT_EQ(stats.get("rtu.reject_arbiter"), 1.0);
}

TEST_F(RtFixture, WarpBufferCapacityRejects)
{
    build(2);
    const TraceOp op = makeOp(0x1, 1, 64, 0x100000);
    EXPECT_TRUE(rt->tryDispatch(0, 0, wt, op, nullptr, now));
    ++now;
    EXPECT_TRUE(rt->tryDispatch(0, 1, wt, op, nullptr, now));
    ++now;
    EXPECT_FALSE(rt->tryDispatch(0, 2, wt, op, nullptr, now));
    EXPECT_EQ(stats.get("rtu.reject_no_entry"), 1.0);
}

TEST_F(RtFixture, MultiBeatCountsAllBeats)
{
    build();
    int done = 0;
    const TraceOp op = makeOp(0x3, 4, 64, 0x200000); // 2 lanes, 4 beats
    ASSERT_TRUE(rt->tryDispatch(0, 0, wt, op, [&] { ++done; }, now));
    for (int i = 0; i < 400 && done == 0; ++i)
        tickAll();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(stats.get("rtu.completed"), 4.0);
    EXPECT_EQ(stats.get("rtu.dispatched"), 1.0);
    // Datapath streamed lanes x beats = 8 thread-beats.
    EXPECT_GE(stats.get("rtu.busy_cycles"), 8.0);
}

TEST_F(RtFixture, DatapathLatencyScalesWithLanes)
{
    build();
    int done_sparse = 0, done_dense = 0;
    // Warm the cache so both runs gather instantly.
    const TraceOp sparse = makeOp(0x1, 1, 64, 0x300000);
    const TraceOp dense = makeOp(kFullMask, 1, 64, 0x300000);
    ASSERT_TRUE(rt->tryDispatch(0, 0, wt, sparse, [&] { ++done_sparse; },
                                now));
    std::uint64_t start = now;
    while (done_sparse == 0)
        tickAll();
    const std::uint64_t sparse_latency = now - start;

    ASSERT_TRUE(rt->tryDispatch(0, 1, wt, dense, [&] { ++done_dense; },
                                now));
    start = now;
    while (done_dense == 0)
        tickAll();
    const std::uint64_t dense_latency = now - start;
    // 32 active lanes take ~31 more issue cycles than 1 lane; cache is
    // warm for the overlapping lines but dense touches 32 lines.
    EXPECT_GT(dense_latency, sparse_latency + 20);
}

TEST_F(RtFixture, SameLineRequestsMergeAcrossEntries)
{
    build();
    const TraceOp a = makeOp(0x1, 1, 64, 0x400000);
    const TraceOp b = makeOp(0x1, 1, 64, 0x400000); // same line
    ASSERT_TRUE(rt->tryDispatch(0, 0, wt, a, nullptr, now));
    ++now;
    ASSERT_TRUE(rt->tryDispatch(0, 1, wt, b, nullptr, now));
    EXPECT_EQ(stats.get("rtu.mem_requests"), 1.0); // merged
    for (int i = 0; i < 200 && !rt->drained(); ++i)
        tickAll();
    EXPECT_TRUE(rt->drained());
    EXPECT_EQ(stats.get("rtu.completed"), 2.0);
}

TEST_F(RtFixture, PerWarpInOrderCompletion)
{
    build();
    std::vector<int> order;
    // Warp 0 issues two instructions; the first touches a cold line
    // (slow), the second a warm one (fast). Results must still retire
    // in dispatch order.
    const TraceOp slow = makeOp(0x1, 1, 64, 0x500000);
    ASSERT_TRUE(rt->tryDispatch(0, 0, wt, slow,
                                [&] { order.push_back(1); }, now));
    ++now;
    // Pre-warm the second line.
    l1->access(0x600000, false, nullptr, now);
    l1->tick(now);
    for (int i = 0; i < 60; ++i)
        tickAll(false);
    const TraceOp fast = makeOp(0x1, 1, 64, 0x600000);
    ASSERT_TRUE(rt->tryDispatch(0, 0, wt, fast,
                                [&] { order.push_back(2); }, now));
    for (int i = 0; i < 300 && order.size() < 2; ++i)
        tickAll();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST_F(RtFixture, DifferentWarpsMayCompleteOutOfOrder)
{
    build();
    std::vector<int> order;
    const TraceOp slow = makeOp(kFullMask, 4, 64, 0x700000);
    ASSERT_TRUE(rt->tryDispatch(0, 0, wt, slow,
                                [&] { order.push_back(1); }, now));
    ++now;
    const TraceOp fast = makeOp(0x1, 1, 64, 0x700000);
    ASSERT_TRUE(rt->tryDispatch(1, 1, wt, fast,
                                [&] { order.push_back(2); }, now));
    for (int i = 0; i < 500 && order.size() < 2; ++i)
        tickAll();
    ASSERT_EQ(order.size(), 2u);
    // The single-lane fast op of warp 1 overtakes warp 0's big one.
    EXPECT_EQ(order[0], 2);
}

TEST_F(RtFixture, NoPortNoProgressOnGather)
{
    build();
    int done = 0;
    const TraceOp op = makeOp(0x1, 1, 64, 0x800000);
    ASSERT_TRUE(rt->tryDispatch(0, 0, wt, op, [&] { ++done; }, now));
    for (int i = 0; i < 100; ++i)
        tickAll(false); // never grant the L1 port
    EXPECT_EQ(done, 0);
    EXPECT_TRUE(rt->wantsAccess());
    for (int i = 0; i < 200 && done == 0; ++i)
        tickAll(true);
    EXPECT_EQ(done, 1);
}

} // namespace
} // namespace hsu
