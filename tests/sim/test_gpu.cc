/**
 * @file
 * Timing-core unit tests: issue bandwidth, load latency/MLP, token
 * dependencies, HSU instruction flow, and end-to-end drain.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "sim/gpu.hh"

namespace hsu
{
namespace
{

GpuConfig
tinyConfig()
{
    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.finalize();
    return cfg;
}

TEST(GpuTiming, EmptyKernelFinishes)
{
    StatGroup stats;
    KernelTrace trace;
    const RunResult r = simulateKernel(tinyConfig(), trace, stats);
    EXPECT_LT(r.cycles, 200u);
}

TEST(GpuTiming, AluOnlyWarpTakesAboutCountCycles)
{
    StatGroup stats;
    KernelTrace trace;
    trace.warps.emplace_back();
    TraceBuilder tb(trace.warps[0]);
    tb.alu(1000);
    const RunResult r = simulateKernel(tinyConfig(), trace, stats);
    EXPECT_GE(r.cycles, 1000u);
    EXPECT_LT(r.cycles, 1200u);
    EXPECT_DOUBLE_EQ(stats.get("sm.instrs_issued"), 1000.0);
}

TEST(GpuTiming, CompletionDetectedOnExactCycle)
{
    // A lone ALU block of count c occupies its sub-core for cycles
    // [0, c) and the warp retires on cycle c: exactly c+1 simulated
    // cycles, with no completion-check period rounding the count up.
    for (const unsigned c : {1u, 5u, 63u, 64u, 200u}) {
        StatGroup stats;
        KernelTrace trace;
        trace.warps.emplace_back();
        TraceBuilder tb(trace.warps[0]);
        tb.alu(c);
        const RunResult r = simulateKernel(tinyConfig(), trace, stats);
        EXPECT_EQ(r.cycles, c + 1) << "c=" << c;
    }
}

TEST(GpuTiming, TwoWarpsShareOneSubCore)
{
    // Both warps land on sub-core slots of the same SM; four sub-cores
    // mean two warps issue in parallel -> ~1000 cycles, not 2000.
    StatGroup stats;
    KernelTrace trace;
    for (int i = 0; i < 2; ++i) {
        trace.warps.emplace_back();
        TraceBuilder tb(trace.warps.back());
        tb.alu(1000);
    }
    const RunResult r = simulateKernel(tinyConfig(), trace, stats);
    EXPECT_LT(r.cycles, 1300u);
}

TEST(GpuTiming, LoadLatencyStallsDependent)
{
    StatGroup stats;
    KernelTrace trace;
    trace.warps.emplace_back();
    TraceBuilder tb(trace.warps[0]);
    const auto tok = tb.loadPattern(0x10000, 4, 4);
    tb.alu(1, kFullMask, TraceBuilder::tokenMask(tok));
    const RunResult r = simulateKernel(tinyConfig(), trace, stats);
    // Cold miss: L1 + interconnect + L2 + DRAM round trip.
    EXPECT_GT(r.cycles, 100u);
    EXPECT_EQ(stats.get("l1d.0.misses"), 1.0);
}

TEST(GpuTiming, IndependentLoadsOverlap)
{
    // 8 loads to distinct lines with distinct tokens, then one
    // dependent op: the misses should overlap (MLP), finishing far
    // sooner than 8 serialized round trips.
    StatGroup stats;
    KernelTrace trace;
    trace.warps.emplace_back();
    TraceBuilder tb(trace.warps[0]);
    std::uint32_t toks = 0;
    for (int i = 0; i < 8; ++i) {
        toks |= TraceBuilder::tokenMask(
            tb.loadPattern(0x10000 + i * 4096, 4, 4));
    }
    tb.alu(1, kFullMask, toks);
    const RunResult r = simulateKernel(tinyConfig(), trace, stats);
    EXPECT_EQ(stats.get("l1d.0.misses"), 8.0);
    EXPECT_LT(r.cycles, 8 * 150u);
}

TEST(GpuTiming, CoalescedLoadTouchesOneLine)
{
    StatGroup stats;
    KernelTrace trace;
    trace.warps.emplace_back();
    TraceBuilder tb(trace.warps[0]);
    tb.loadPattern(0x20000, 4, 4); // 32 lanes x 4B = one 128B line
    simulateKernel(tinyConfig(), trace, stats);
    EXPECT_EQ(stats.get("l1d.0.accesses"), 1.0);
}

TEST(GpuTiming, GatherLoadTouchesManyLines)
{
    StatGroup stats;
    KernelTrace trace;
    trace.warps.emplace_back();
    TraceBuilder tb(trace.warps[0]);
    std::uint64_t addrs[kWarpSize];
    for (unsigned l = 0; l < kWarpSize; ++l)
        addrs[l] = 0x20000 + l * 4096ull;
    tb.loadGather(addrs, 4, kFullMask);
    simulateKernel(tinyConfig(), trace, stats);
    EXPECT_EQ(stats.get("l1d.0.accesses"), 32.0);
}

TEST(GpuTiming, HsuInstructionCompletes)
{
    StatGroup stats;
    KernelTrace trace;
    trace.warps.emplace_back();
    TraceBuilder tb(trace.warps[0]);
    std::uint64_t addrs[kWarpSize];
    for (unsigned l = 0; l < kWarpSize; ++l)
        addrs[l] = 0x30000 + l * 128ull;
    const auto tok = tb.hsuOp(HsuOpcode::RayIntersect, HsuMode::RayBox,
                              addrs, 64, 1, kFullMask);
    tb.alu(1, kFullMask, TraceBuilder::tokenMask(tok));
    const RunResult r = simulateKernel(tinyConfig(), trace, stats);
    EXPECT_EQ(stats.get("rtu.completed"), 1.0);
    EXPECT_EQ(stats.get("rtu.completed_box"), 1.0);
    EXPECT_GT(r.cycles, 50u);
}

TEST(GpuTiming, MultiBeatEuclidCompletesAllBeats)
{
    StatGroup stats;
    KernelTrace trace;
    trace.warps.emplace_back();
    TraceBuilder tb(trace.warps[0]);
    std::uint64_t addrs[kWarpSize];
    for (unsigned l = 0; l < kWarpSize; ++l)
        addrs[l] = 0x40000 + l * 512ull;
    // dim 128 -> 8 beats of 64B.
    const auto tok = tb.hsuOp(HsuOpcode::PointEuclid, HsuMode::Euclid,
                              addrs, 64, 8, kFullMask);
    tb.alu(1, kFullMask, TraceBuilder::tokenMask(tok));
    simulateKernel(tinyConfig(), trace, stats);
    // Each beat is one completed HSU instruction (roofline metric);
    // the 8-beat sequence occupies a single warp-buffer dispatch.
    EXPECT_EQ(stats.get("rtu.completed"), 8.0);
    EXPECT_EQ(stats.get("rtu.completed_euclid"), 8.0);
    EXPECT_EQ(stats.get("rtu.dispatched"), 1.0);
}

TEST(GpuTiming, BaselineConfigPanicsOnHsuOps)
{
    GpuConfig cfg = tinyConfig();
    cfg.rtUnitEnabled = false;
    StatGroup stats;
    KernelTrace trace;
    trace.warps.emplace_back();
    TraceBuilder tb(trace.warps[0]);
    std::uint64_t addrs[kWarpSize] = {};
    tb.hsuOp(HsuOpcode::PointEuclid, HsuMode::Euclid, addrs, 64, 1, 1u);
    EXPECT_DEATH(simulateKernel(cfg, trace, stats), "RT unit disabled");
}

TEST(GpuTiming, OffloadableFractionTracksTaggedOps)
{
    StatGroup stats;
    KernelTrace trace;
    trace.warps.emplace_back();
    TraceBuilder tb(trace.warps[0]);
    tb.alu(500, kFullMask, 0, true);  // offloadable
    tb.alu(500, kFullMask, 0, false); // not
    const RunResult r = simulateKernel(tinyConfig(), trace, stats);
    EXPECT_NEAR(r.offloadableFraction, 0.5, 0.05);
}

TEST(GpuTiming, ManyWarpsAcrossSmsFinish)
{
    GpuConfig cfg = tinyConfig();
    cfg.numSms = 4;
    cfg.finalize();
    StatGroup stats;
    KernelTrace trace;
    for (int w = 0; w < 300; ++w) { // more warps than slots -> waves
        trace.warps.emplace_back();
        TraceBuilder tb(trace.warps.back());
        const auto tok = tb.loadPattern(0x10000 + w * 512, 4, 4);
        tb.alu(20, kFullMask, TraceBuilder::tokenMask(tok));
    }
    const RunResult r = simulateKernel(cfg, trace, stats);
    EXPECT_EQ(stats.get("sm.warps_retired"), 300.0);
    EXPECT_GT(r.cycles, 100u);
}

} // namespace
} // namespace hsu
