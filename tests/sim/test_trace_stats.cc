/**
 * @file
 * Trace-statistics tests: instruction mix accounting and footprint.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace_stats.hh"

namespace hsu
{
namespace
{

TEST(TraceStats, EmptyTrace)
{
    const TraceStats s = analyzeTrace(KernelTrace{});
    EXPECT_EQ(s.warps, 0u);
    EXPECT_EQ(s.instructions, 0u);
    EXPECT_EQ(s.offloadableFraction(), 0.0);
}

TEST(TraceStats, CountsEveryClass)
{
    KernelTrace kt;
    kt.warps.emplace_back();
    TraceBuilder tb(kt.warps.back());
    tb.alu(10, kFullMask, 0, true); // offloadable
    tb.shared(5);
    tb.loadPattern(0x1000, 4, 4);
    tb.storePattern(0x2000, 4, 4);
    std::uint64_t addrs[kWarpSize] = {};
    tb.hsuOp(HsuOpcode::PointEuclid, HsuMode::Euclid, addrs, 64, 8,
             0x0000ffff);

    const TraceStats s = analyzeTrace(kt);
    EXPECT_EQ(s.warps, 1u);
    EXPECT_EQ(s.ops, 5u);
    EXPECT_EQ(s.aluInstructions, 10u);
    EXPECT_EQ(s.sharedInstructions, 5u);
    EXPECT_EQ(s.loadInstructions, 1u);
    EXPECT_EQ(s.storeInstructions, 1u);
    EXPECT_EQ(s.hsuInstructions, 8u);
    EXPECT_EQ(s.hsuByMode[static_cast<unsigned>(HsuMode::Euclid)], 8u);
    EXPECT_EQ(s.instructions, 10u + 5 + 1 + 1 + 8);
    EXPECT_EQ(s.offloadableInstructions, 10u);
    // Bytes: 32x4 (load) + 32x4 (store) + 16 lanes x 64B x 8 beats.
    EXPECT_EQ(s.globalBytes, 128u + 128 + 16 * 64 * 8);
    // Active lanes over the 3 memory/HSU ops: (32 + 32 + 16) / 3.
    EXPECT_NEAR(s.avgActiveLanes, 80.0 / 3.0, 1e-9);
}

TEST(TraceStats, PrintsAllRows)
{
    KernelTrace kt;
    kt.warps.emplace_back();
    TraceBuilder tb(kt.warps.back());
    std::uint64_t addrs[kWarpSize] = {};
    tb.hsuOp(HsuOpcode::KeyCompare, HsuMode::KeyCompare, addrs, 144, 1,
             0x1);
    std::ostringstream os;
    printTraceStats(os, analyzeTrace(kt), "unit-test");
    const std::string out = os.str();
    EXPECT_NE(out.find("key-compare"), std::string::npos);
    EXPECT_NE(out.find("dynamic instructions"), std::string::npos);
}

} // namespace
} // namespace hsu
