/**
 * @file
 * Simulator determinism and conservation properties: identical runs
 * produce identical cycle counts and counters; memory-system counters
 * balance; scheduler policies behave as configured.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "search/runner.hh"
#include "sim/gpu.hh"

namespace hsu
{
namespace
{

KernelTrace
mixedTrace(unsigned warps, std::uint64_t seed)
{
    Rng rng(seed);
    KernelTrace kt;
    for (unsigned w = 0; w < warps; ++w) {
        kt.warps.emplace_back();
        TraceBuilder tb(kt.warps.back());
        for (int i = 0; i < 30; ++i) {
            const auto roll = rng.nextBounded(4);
            if (roll == 0) {
                tb.alu(1 + static_cast<unsigned>(rng.nextBounded(8)));
            } else if (roll == 1) {
                tb.shared(1 + static_cast<unsigned>(rng.nextBounded(4)));
            } else if (roll == 2) {
                const auto tok = tb.loadPattern(
                    0x100000 + rng.nextBounded(1 << 20) * 64, 4, 4);
                tb.alu(2, kFullMask, TraceBuilder::tokenMask(tok));
            } else {
                std::uint64_t addrs[kWarpSize];
                for (unsigned l = 0; l < kWarpSize; ++l) {
                    addrs[l] =
                        0x800000 + rng.nextBounded(1 << 18) * 128;
                }
                const auto tok =
                    tb.hsuOp(HsuOpcode::PointEuclid, HsuMode::Euclid,
                             addrs, 64,
                             1 + static_cast<unsigned>(
                                 rng.nextBounded(4)),
                             0xffffu);
                tb.alu(1, kFullMask, TraceBuilder::tokenMask(tok));
            }
        }
    }
    return kt;
}

TEST(Determinism, IdenticalRunsIdenticalCounters)
{
    const KernelTrace trace = mixedTrace(40, 17);
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.finalize();

    StatGroup s1, s2;
    const RunResult r1 = simulateKernel(cfg, trace, s1);
    const RunResult r2 = simulateKernel(cfg, trace, s2);
    EXPECT_EQ(r1.cycles, r2.cycles);
    const auto d1 = s1.dump();
    const auto d2 = s2.dump();
    ASSERT_EQ(d1.size(), d2.size());
    for (std::size_t i = 0; i < d1.size(); ++i) {
        EXPECT_EQ(d1[i].first, d2[i].first);
        EXPECT_EQ(d1[i].second, d2[i].second) << d1[i].first;
    }
}

TEST(Determinism, MemoryCountersBalance)
{
    const KernelTrace trace = mixedTrace(30, 23);
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.finalize();
    StatGroup stats;
    simulateKernel(cfg, trace, stats);

    // Every L1 access is a hit, a reserved hit, or a miss.
    for (unsigned i = 0; i < cfg.numSms; ++i) {
        const std::string p = "l1d." + std::to_string(i);
        EXPECT_DOUBLE_EQ(stats.get(p + ".accesses"),
                         stats.get(p + ".hits") +
                             stats.get(p + ".hit_reserved") +
                             stats.get(p + ".misses") +
                             stats.get(p + ".writes"));
    }
    // Same at the L2.
    EXPECT_DOUBLE_EQ(stats.get("l2.accesses"),
                     stats.get("l2.hits") +
                         stats.get("l2.hit_reserved") +
                         stats.get("l2.misses") +
                         stats.get("l2.writes"));
    // DRAM row accounting: every access is a hit or an activation.
    EXPECT_DOUBLE_EQ(stats.get("dram.accesses"),
                     stats.get("dram.row_hits") +
                         stats.get("dram.activations"));
    // Attribution covers every sub-core cycle.
    EXPECT_DOUBLE_EQ(stats.get("sm.slot_cycles"),
                     stats.get("sm.busy_cycles") +
                         stats.get("sm.stall_cycles") +
                         stats.get("sm.idle_cycles"));
}

TEST(Determinism, SmCountScalesThroughput)
{
    const KernelTrace trace = mixedTrace(64, 29);
    GpuConfig one;
    one.numSms = 1;
    one.finalize();
    GpuConfig four;
    four.numSms = 4;
    four.finalize();
    StatGroup s1, s4;
    const RunResult r1 = simulateKernel(one, trace, s1);
    const RunResult r4 = simulateKernel(four, trace, s4);
    EXPECT_LT(r4.cycles, r1.cycles);
    // Same total work either way.
    EXPECT_EQ(s1.get("sm.warps_retired"), 64.0);
    EXPECT_EQ(s4.get("sm.warps_retired"), 64.0);
    EXPECT_DOUBLE_EQ(s1.get("sm.instrs_issued"),
                     s4.get("sm.instrs_issued"));
}

TEST(Determinism, SchedulerPoliciesBothComplete)
{
    const KernelTrace trace = mixedTrace(32, 31);
    for (const auto policy :
         {SchedulerPolicy::Gto, SchedulerPolicy::RoundRobin}) {
        GpuConfig cfg;
        cfg.numSms = 1;
        cfg.scheduler = policy;
        cfg.finalize();
        StatGroup stats;
        const RunResult r = simulateKernel(cfg, trace, stats);
        EXPECT_GT(r.cycles, 0u);
        EXPECT_EQ(stats.get("sm.warps_retired"), 32.0);
    }
}

TEST(Determinism, WarpBufferMonotoneAtSmallSizes)
{
    // More warp-buffer entries never hurt this latency-bound trace.
    const KernelTrace trace = mixedTrace(48, 37);
    std::uint64_t prev = ~0ull;
    for (const unsigned wb : {1u, 2u, 4u, 8u}) {
        GpuConfig cfg;
        cfg.numSms = 1;
        cfg.warpBufferSize = wb;
        cfg.finalize();
        StatGroup stats;
        const RunResult r = simulateKernel(cfg, trace, stats);
        EXPECT_LE(r.cycles, prev) << "wb=" << wb;
        prev = r.cycles;
    }
}

KernelTrace
loadStallTrace(unsigned warps, std::uint64_t seed)
{
    // Every warp alternates load -> dependent ALU, so all warps stall
    // on DRAM together and leave multi-candidate eventless gaps; the
    // mixed offloadable flags make stall attribution order-sensitive.
    Rng rng(seed);
    KernelTrace kt;
    for (unsigned w = 0; w < warps; ++w) {
        kt.warps.emplace_back();
        TraceBuilder tb(kt.warps.back());
        for (unsigned i = 0; i < 12; ++i) {
            const auto tok = tb.loadPattern(
                0x100000 + rng.nextBounded(1 << 20) * 64, 4, 4);
            tb.alu(1 + (w % 3), kFullMask,
                   TraceBuilder::tokenMask(tok), (w + i) % 2 == 0);
        }
    }
    return kt;
}

void
expectSameDump(const StatGroup &a, const StatGroup &b,
               const std::string &ignore = "")
{
    const auto da = a.dump();
    const auto db = b.dump();
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
        ASSERT_EQ(da[i].first, db[i].first);
        if (da[i].first == ignore)
            continue;
        EXPECT_EQ(da[i].second, db[i].second) << da[i].first;
    }
}

TEST(Determinism, FastForwardMatchesPerCycleLoop)
{
    // Bit-identical counters with idle-cycle skipping on and off; only
    // the skip diagnostic itself may differ. HSU_NO_SKIP additionally
    // asserts each predicted gap really was eventless.
    // Sparse occupancy (one warp per SM) so dependent loads leave
    // DRAM-latency gaps the skipper can actually jump. Both scheduler
    // policies: RoundRobin rotates its stall-attribution head every
    // cycle, the hardest case for the skipped-gap stat compensation.
    for (const auto &[warps, sms] : {std::pair{2u, 2u},
                                     // 2 warps/sub-core: stalled gaps
                                     // with a multi-candidate order.
                                     std::pair{8u, 1u}})
    for (const auto policy :
         {SchedulerPolicy::Gto, SchedulerPolicy::RoundRobin}) {
        const KernelTrace trace = sms == 1
            ? loadStallTrace(warps, 41)
            : mixedTrace(warps, 41);
        GpuConfig cfg;
        cfg.numSms = sms;
        cfg.scheduler = policy;
        cfg.finalize();

        StatGroup skip_stats, noskip_stats;
        const RunResult skip = simulateKernel(cfg, trace, skip_stats);
        // The HSU_NO_SKIP env default is latched once per process, so
        // tests opt in through the config override instead of setenv.
        GpuConfig noskip_cfg = cfg;
        noskip_cfg.noSkip = 1;
        const RunResult noskip =
            simulateKernel(noskip_cfg, trace, noskip_stats);

        EXPECT_EQ(skip.cycles, noskip.cycles);
        EXPECT_GT(skip_stats.get("sim.ff_cycles"), 0.0);
        EXPECT_EQ(noskip_stats.get("sim.ff_cycles"), 0.0);
        expectSameDump(skip_stats, noskip_stats, "sim.ff_cycles");
    }
}

TEST(Determinism, ParallelRunnerMatchesSerial)
{
    // The fan-out executor must be a pure scheduling change: same
    // cycles and same full counter dumps as calling the runner
    // serially, regardless of worker count or job order.
    GpuConfig gpu;
    gpu.numSms = 2;
    gpu.finalize();
    RunnerOptions tiny;
    tiny.ggnnQueries = 32;
    tiny.pointQueries = 64;
    tiny.keyQueries = 64;

    std::vector<SimJob> jobs;
    for (const auto &[algo, id] :
         {std::pair{Algo::Btree, DatasetId::BTree10k},
          std::pair{Algo::Bvhnn, DatasetId::Random10k},
          std::pair{Algo::Flann, DatasetId::Bunny},
          std::pair{Algo::Ggnn, DatasetId::Sift10k}}) {
        SimJob job;
        job.kind = SimJob::Kind::Workload;
        job.algo = algo;
        job.dataset = id;
        job.gpu = gpu;
        job.opts = tiny;
        jobs.push_back(job);
        job.kind = SimJob::Kind::HsuOnly;
        jobs.push_back(job);
    }

    const std::vector<SimJobResult> par = runJobsParallel(jobs, 4);
    ASSERT_EQ(par.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SimJob &job = jobs[i];
        if (job.kind == SimJob::Kind::Workload) {
            const WorkloadResult serial =
                runWorkload(job.algo, job.dataset, job.gpu, job.opts);
            EXPECT_EQ(serial.base.cycles, par[i].workload.base.cycles);
            EXPECT_EQ(serial.hsu.cycles, par[i].workload.hsu.cycles);
            expectSameDump(serial.baseStats, par[i].workload.baseStats);
            expectSameDump(serial.hsuStats, par[i].workload.hsuStats);
        } else {
            StatGroup stats;
            const RunResult serial = runHsuOnly(
                job.algo, job.dataset, job.gpu, job.opts, stats);
            EXPECT_EQ(serial.cycles, par[i].run.cycles);
            expectSameDump(stats, par[i].stats);
        }
    }
}

} // namespace
} // namespace hsu
