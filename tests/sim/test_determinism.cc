/**
 * @file
 * Simulator determinism and conservation properties: identical runs
 * produce identical cycle counts and counters; memory-system counters
 * balance; scheduler policies behave as configured.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/gpu.hh"

namespace hsu
{
namespace
{

KernelTrace
mixedTrace(unsigned warps, std::uint64_t seed)
{
    Rng rng(seed);
    KernelTrace kt;
    for (unsigned w = 0; w < warps; ++w) {
        kt.warps.emplace_back();
        TraceBuilder tb(kt.warps.back());
        for (int i = 0; i < 30; ++i) {
            const auto roll = rng.nextBounded(4);
            if (roll == 0) {
                tb.alu(1 + static_cast<unsigned>(rng.nextBounded(8)));
            } else if (roll == 1) {
                tb.shared(1 + static_cast<unsigned>(rng.nextBounded(4)));
            } else if (roll == 2) {
                const auto tok = tb.loadPattern(
                    0x100000 + rng.nextBounded(1 << 20) * 64, 4, 4);
                tb.alu(2, kFullMask, TraceBuilder::tokenMask(tok));
            } else {
                std::uint64_t addrs[kWarpSize];
                for (unsigned l = 0; l < kWarpSize; ++l) {
                    addrs[l] =
                        0x800000 + rng.nextBounded(1 << 18) * 128;
                }
                const auto tok =
                    tb.hsuOp(HsuOpcode::PointEuclid, HsuMode::Euclid,
                             addrs, 64,
                             1 + static_cast<unsigned>(
                                 rng.nextBounded(4)),
                             0xffffu);
                tb.alu(1, kFullMask, TraceBuilder::tokenMask(tok));
            }
        }
    }
    return kt;
}

TEST(Determinism, IdenticalRunsIdenticalCounters)
{
    const KernelTrace trace = mixedTrace(40, 17);
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.finalize();

    StatGroup s1, s2;
    const RunResult r1 = simulateKernel(cfg, trace, s1);
    const RunResult r2 = simulateKernel(cfg, trace, s2);
    EXPECT_EQ(r1.cycles, r2.cycles);
    const auto d1 = s1.dump();
    const auto d2 = s2.dump();
    ASSERT_EQ(d1.size(), d2.size());
    for (std::size_t i = 0; i < d1.size(); ++i) {
        EXPECT_EQ(d1[i].first, d2[i].first);
        EXPECT_EQ(d1[i].second, d2[i].second) << d1[i].first;
    }
}

TEST(Determinism, MemoryCountersBalance)
{
    const KernelTrace trace = mixedTrace(30, 23);
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.finalize();
    StatGroup stats;
    simulateKernel(cfg, trace, stats);

    // Every L1 access is a hit, a reserved hit, or a miss.
    for (unsigned i = 0; i < cfg.numSms; ++i) {
        const std::string p = "l1d." + std::to_string(i);
        EXPECT_DOUBLE_EQ(stats.get(p + ".accesses"),
                         stats.get(p + ".hits") +
                             stats.get(p + ".hit_reserved") +
                             stats.get(p + ".misses") +
                             stats.get(p + ".writes"));
    }
    // Same at the L2.
    EXPECT_DOUBLE_EQ(stats.get("l2.accesses"),
                     stats.get("l2.hits") +
                         stats.get("l2.hit_reserved") +
                         stats.get("l2.misses") +
                         stats.get("l2.writes"));
    // DRAM row accounting: every access is a hit or an activation.
    EXPECT_DOUBLE_EQ(stats.get("dram.accesses"),
                     stats.get("dram.row_hits") +
                         stats.get("dram.activations"));
    // Attribution covers every sub-core cycle.
    EXPECT_DOUBLE_EQ(stats.get("sm.slot_cycles"),
                     stats.get("sm.busy_cycles") +
                         stats.get("sm.stall_cycles") +
                         stats.get("sm.idle_cycles"));
}

TEST(Determinism, SmCountScalesThroughput)
{
    const KernelTrace trace = mixedTrace(64, 29);
    GpuConfig one;
    one.numSms = 1;
    one.finalize();
    GpuConfig four;
    four.numSms = 4;
    four.finalize();
    StatGroup s1, s4;
    const RunResult r1 = simulateKernel(one, trace, s1);
    const RunResult r4 = simulateKernel(four, trace, s4);
    EXPECT_LT(r4.cycles, r1.cycles);
    // Same total work either way.
    EXPECT_EQ(s1.get("sm.warps_retired"), 64.0);
    EXPECT_EQ(s4.get("sm.warps_retired"), 64.0);
    EXPECT_DOUBLE_EQ(s1.get("sm.instrs_issued"),
                     s4.get("sm.instrs_issued"));
}

TEST(Determinism, SchedulerPoliciesBothComplete)
{
    const KernelTrace trace = mixedTrace(32, 31);
    for (const auto policy :
         {SchedulerPolicy::Gto, SchedulerPolicy::RoundRobin}) {
        GpuConfig cfg;
        cfg.numSms = 1;
        cfg.scheduler = policy;
        cfg.finalize();
        StatGroup stats;
        const RunResult r = simulateKernel(cfg, trace, stats);
        EXPECT_GT(r.cycles, 0u);
        EXPECT_EQ(stats.get("sm.warps_retired"), 32.0);
    }
}

TEST(Determinism, WarpBufferMonotoneAtSmallSizes)
{
    // More warp-buffer entries never hurt this latency-bound trace.
    const KernelTrace trace = mixedTrace(48, 37);
    std::uint64_t prev = ~0ull;
    for (const unsigned wb : {1u, 2u, 4u, 8u}) {
        GpuConfig cfg;
        cfg.numSms = 1;
        cfg.warpBufferSize = wb;
        cfg.finalize();
        StatGroup stats;
        const RunResult r = simulateKernel(cfg, trace, stats);
        EXPECT_LE(r.cycles, prev) << "wb=" << wb;
        prev = r.cycles;
    }
}

} // namespace
} // namespace hsu
