/**
 * @file
 * Lowering contract: every semantic IR op must expand to the documented
 * instruction sequence (the catalog in sim/lower.hh) under each of the
 * three lowerings, with virtual tokens resolving to the right concrete
 * scoreboard masks. Synthetic one-warp traces keep the expected op
 * lists small enough to assert exhaustively.
 */

#include <gtest/gtest.h>

#include "sim/ir.hh"
#include "sim/lower.hh"
#include "sim/trace_stats.hh"

namespace hsu
{
namespace
{

/** Build a one-warp semantic trace with @p fill and lower it. */
template <typename Fill>
KernelTrace
lowerOne(Fill fill, const Lowering &low)
{
    SemKernelTrace sem;
    sem.warps.emplace_back();
    SemBuilder sb(sem.warps.back());
    fill(sb);
    return lowerTrace(sem, low);
}

std::uint64_t
laneAddrs(std::uint64_t base, std::uint64_t stride, std::uint64_t *out)
{
    for (unsigned l = 0; l < kWarpSize; ++l)
        out[l] = base + l * stride;
    return base;
}

TEST(Lower, PassThroughOpsAreVerbatim)
{
    const auto fill = [](SemBuilder &sb) {
        const VirtToken t = sb.loadPattern(0x1000, 4, 4, kFullMask);
        sb.alu(5, kFullMask, {t});
        sb.shared(3, 0xffffu);
        sb.storePattern(0x2000, 8, 8, 0xffu);
    };
    for (const Lowering &low :
         {Lowering::baseline(), Lowering::hsu(), Lowering::partial(0.5)}) {
        const KernelTrace t = lowerOne(fill, low);
        ASSERT_EQ(t.warps.size(), 1u);
        const auto &ops = t.warps[0].ops;
        ASSERT_EQ(ops.size(), 4u);
        EXPECT_EQ(ops[0].type, OpType::Load);
        EXPECT_EQ(ops[0].addr.base, 0x1000u);
        EXPECT_EQ(ops[0].addr.stride, 4);
        // The load's virtual token resolves to its concrete token mask.
        EXPECT_EQ(ops[1].type, OpType::Alu);
        EXPECT_EQ(ops[1].count, 5u);
        EXPECT_EQ(ops[1].consumesMask,
                  TraceBuilder::tokenMask(ops[0].produces));
        EXPECT_EQ(ops[2].type, OpType::Shared);
        EXPECT_EQ(ops[2].activeMask, 0xffffu);
        EXPECT_EQ(ops[3].type, OpType::Store);
        EXPECT_EQ(ops[3].activeMask, 0xffu);
        for (const auto &op : ops)
            EXPECT_EQ(op.origin, TraceOrigin::Generic);
    }
}

TEST(Lower, DistanceWarpCoopBaseline)
{
    // dim=24 euclid: 1 chunk (96B < 128B), so per candidate:
    // load + alu(7) + alu(10) + alu(2)  (epilogue not offloadable).
    std::uint64_t addrs[kWarpSize];
    laneAddrs(0x4000, 0x100, addrs);
    const auto fill = [&](SemBuilder &sb) {
        const VirtToken n = sb.loadPattern(0x100, 4, 4);
        sb.distanceWarpCoop(Metric::Euclidean, 24, addrs, 3,
                            ggnnDistanceShape(Metric::Euclidean, 24), {n});
    };
    const KernelTrace t = lowerOne(fill, Lowering::baseline());
    const auto &ops = t.warps[0].ops;
    ASSERT_EQ(ops.size(), 1u + 3 * 4);
    const std::uint32_t ntok = TraceBuilder::tokenMask(ops[0].produces);
    for (unsigned i = 0; i < 3; ++i) {
        const TraceOp &ld = ops[1 + i * 4];
        EXPECT_EQ(ld.type, OpType::Load);
        EXPECT_EQ(ld.addr.base, addrs[i]);
        EXPECT_TRUE(ld.offloadable);
        EXPECT_EQ(ops[2 + i * 4].count, 7u);  // per-chunk FMA block
        const TraceOp &red = ops[3 + i * 4];
        EXPECT_EQ(red.count, 10u);            // shuffle reduction
        // The reduction waits on the chunk load AND the consumed token.
        EXPECT_EQ(red.consumesMask,
                  ntok | TraceBuilder::tokenMask(ld.produces));
        EXPECT_TRUE(red.offloadable);
        const TraceOp &epi = ops[4 + i * 4];
        EXPECT_EQ(epi.count, 2u);             // keep/compare epilogue
        EXPECT_FALSE(epi.offloadable);
        for (unsigned k = 1; k <= 4; ++k)
            EXPECT_EQ(ops[i * 4 + k].origin, TraceOrigin::Distance);
    }
}

TEST(Lower, DistanceWarpCoopHsu)
{
    std::uint64_t addrs[kWarpSize];
    laneAddrs(0x4000, 0x100, addrs);
    const auto fill = [&](SemBuilder &sb) {
        const VirtToken n = sb.loadPattern(0x100, 4, 4);
        sb.distanceWarpCoop(Metric::Euclidean, 24, addrs, 3,
                            ggnnDistanceShape(Metric::Euclidean, 24), {n});
    };
    const KernelTrace t = lowerOne(fill, Lowering::hsu());
    const auto &ops = t.warps[0].ops;
    ASSERT_EQ(ops.size(), 3u); // load + CISC + trailing alu
    const TraceOp &cisc = ops[1];
    EXPECT_EQ(cisc.type, OpType::HsuOp);
    EXPECT_EQ(cisc.hsuOp, HsuOpcode::PointEuclid);
    EXPECT_EQ(cisc.hsuMode, HsuMode::Euclid);
    EXPECT_EQ(cisc.count, 2u);        // ceil(24 / 16) beats
    EXPECT_EQ(cisc.bytesPerLane, 64u); // 16 floats per beat
    EXPECT_EQ(cisc.activeMask, SemBuilder::lowLanes(3));
    EXPECT_EQ(cisc.consumesMask,
              TraceBuilder::tokenMask(ops[0].produces));
    EXPECT_EQ(ops[2].type, OpType::Alu);
    EXPECT_EQ(ops[2].count, 1u); // euclid trailing scalar block
    EXPECT_EQ(ops[2].consumesMask,
              TraceBuilder::tokenMask(cisc.produces));
    EXPECT_EQ(cisc.origin, TraceOrigin::Distance);
    EXPECT_EQ(ops[2].origin, TraceOrigin::Distance);
}

TEST(Lower, DistanceWarpCoopAngularHsu)
{
    std::uint64_t addrs[kWarpSize];
    laneAddrs(0x4000, 0x100, addrs);
    const auto fill = [&](SemBuilder &sb) {
        sb.distanceWarpCoop(Metric::Angular, 16, addrs, 8,
                            ggnnDistanceShape(Metric::Angular, 16));
    };
    const KernelTrace t = lowerOne(fill, Lowering::hsu());
    const auto &ops = t.warps[0].ops;
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].hsuOp, HsuOpcode::PointAngular);
    EXPECT_EQ(ops[0].hsuMode, HsuMode::Angular);
    EXPECT_EQ(ops[0].count, 2u);        // ceil(16 / 8) beats
    EXPECT_EQ(ops[0].bytesPerLane, 32u); // 8 floats per beat
    EXPECT_EQ(ops[1].count, 4u);         // angular rsqrt/divide block
}

TEST(Lower, DistanceLanesTokenResolution)
{
    std::uint64_t addrs[kWarpSize];
    laneAddrs(0x8000, 0x40, addrs);
    const auto fill = [&](SemBuilder &sb) {
        const VirtToken d =
            sb.distanceLanes(3, addrs, 0xffffu, flannDistanceShape(3));
        sb.alu(4, 0xffffu, {d});
    };
    // Baseline: 2 x 8B gathers (float3 = LDG.64 + LDG.32) + alu(23);
    // the result token resolves to the EMPTY mask (the FMA block
    // consumed its loads internally).
    {
        const KernelTrace t = lowerOne(fill, Lowering::baseline());
        const auto &ops = t.warps[0].ops;
        ASSERT_EQ(ops.size(), 4u);
        EXPECT_EQ(ops[0].type, OpType::Load);
        EXPECT_EQ(ops[1].type, OpType::Load);
        // Chunk c gathers at addrs[l] + c*8 for every lane.
        EXPECT_EQ(t.warps[0].laneAddr(ops[0], 5), addrs[5]);
        EXPECT_EQ(t.warps[0].laneAddr(ops[1], 5), addrs[5] + 8);
        EXPECT_EQ(ops[2].count, 23u); // 3*dim + 14
        EXPECT_EQ(ops[2].consumesMask,
                  TraceBuilder::tokenMask(ops[0].produces) |
                      TraceBuilder::tokenMask(ops[1].produces));
        EXPECT_EQ(ops[3].consumesMask, 0u);
        EXPECT_EQ(ops[3].origin, TraceOrigin::Generic);
    }
    // HSU: one POINT_EUCLID; the token escapes to the consumer.
    {
        const KernelTrace t = lowerOne(fill, Lowering::hsu());
        const auto &ops = t.warps[0].ops;
        ASSERT_EQ(ops.size(), 2u);
        EXPECT_EQ(ops[0].type, OpType::HsuOp);
        EXPECT_EQ(ops[0].hsuOp, HsuOpcode::PointEuclid);
        EXPECT_EQ(ops[0].count, 1u);        // ceil(3 / 16)
        EXPECT_EQ(ops[0].bytesPerLane, 12u); // min(width, dim) floats
        EXPECT_EQ(ops[1].consumesMask,
                  TraceBuilder::tokenMask(ops[0].produces));
    }
}

TEST(Lower, KeyCompareScanBaseline)
{
    const auto fill = [](SemBuilder &sb) {
        sb.keyCompareScan(0x9000, 100);
    };
    // ceil(100/32) = 4 chunks; the last covers 4 separators.
    const KernelTrace t = lowerOne(fill, Lowering::baseline());
    const auto &ops = t.warps[0].ops;
    ASSERT_EQ(ops.size(), 4u * 2 + 1);
    std::uint32_t toks = 0;
    for (unsigned c = 0; c < 4; ++c) {
        const TraceOp &ld = ops[c * 2];
        EXPECT_EQ(ld.type, OpType::Load);
        EXPECT_EQ(ld.addr.base, 0x9000u + c * 128);
        EXPECT_EQ(ld.activeMask,
                  c == 3 ? (1u << 4) - 1u : kFullMask);
        toks |= TraceBuilder::tokenMask(ld.produces);
        EXPECT_EQ(ops[c * 2 + 1].count, 2u); // compare block
    }
    EXPECT_EQ(ops[8].count, 6u); // ballot + reduce
    EXPECT_EQ(ops[8].consumesMask, toks);
    for (const auto &op : ops)
        EXPECT_EQ(op.origin, TraceOrigin::KeyCompare);
}

TEST(Lower, KeyCompareScanHsu)
{
    const auto fill = [](SemBuilder &sb) {
        sb.keyCompareScan(0x9000, 100);
    };
    // ceil(100/36) = 3 lane-chunks in one KEY_COMPARE.
    const KernelTrace t = lowerOne(fill, Lowering::hsu());
    const auto &ops = t.warps[0].ops;
    ASSERT_EQ(ops.size(), 2u);
    const TraceOp &cisc = ops[0];
    EXPECT_EQ(cisc.hsuOp, HsuOpcode::KeyCompare);
    EXPECT_EQ(cisc.hsuMode, HsuMode::KeyCompare);
    EXPECT_EQ(cisc.bytesPerLane, 144u); // 36 keys per lane-chunk
    EXPECT_EQ(cisc.activeMask, (1u << 3) - 1u);
    EXPECT_EQ(t.warps[0].laneAddr(cisc, 0), 0x9000u);
    EXPECT_EQ(t.warps[0].laneAddr(cisc, 1), 0x9000u + 144);
    EXPECT_EQ(t.warps[0].laneAddr(cisc, 2), 0x9000u + 288);
    EXPECT_EQ(ops[1].count, 2u + 3u); // popcount/combine per chunk
    EXPECT_EQ(ops[1].consumesMask,
              TraceBuilder::tokenMask(cisc.produces));
}

TEST(Lower, BoxTestBaselineAndHsu)
{
    std::uint64_t addrs[kWarpSize];
    laneAddrs(0xa000, 0x40, addrs);
    const auto fill = [&](SemBuilder &sb) {
        const VirtToken b = sb.boxTest(addrs, 0xffu, bvhBoxShape());
        sb.alu(5, 0xffu, {b});
    };
    {
        // 64B node = 4 x 16B gathers + alu(30); token resolves empty.
        const KernelTrace t = lowerOne(fill, Lowering::baseline());
        const auto &ops = t.warps[0].ops;
        ASSERT_EQ(ops.size(), 6u);
        std::uint32_t toks = 0;
        for (unsigned c = 0; c < 4; ++c) {
            EXPECT_EQ(ops[c].type, OpType::Load);
            EXPECT_EQ(ops[c].bytesPerLane, 16u);
            EXPECT_EQ(t.warps[0].laneAddr(ops[c], 3),
                      addrs[3] + c * 16);
            toks |= TraceBuilder::tokenMask(ops[c].produces);
        }
        EXPECT_EQ(ops[4].count, 30u);
        EXPECT_EQ(ops[4].consumesMask, toks);
        EXPECT_EQ(ops[5].consumesMask, 0u);
        EXPECT_EQ(ops[4].origin, TraceOrigin::BoxTest);
    }
    {
        const KernelTrace t = lowerOne(fill, Lowering::hsu());
        const auto &ops = t.warps[0].ops;
        ASSERT_EQ(ops.size(), 2u);
        EXPECT_EQ(ops[0].type, OpType::HsuOp);
        EXPECT_EQ(ops[0].hsuOp, HsuOpcode::RayIntersect);
        EXPECT_EQ(ops[0].hsuMode, HsuMode::RayBox);
        EXPECT_EQ(ops[0].bytesPerLane, 64u);
        EXPECT_EQ(ops[1].consumesMask,
                  TraceBuilder::tokenMask(ops[0].produces));
    }
}

TEST(Lower, UnitResidentOpsIgnoreTheLowering)
{
    std::uint64_t addrs[kWarpSize];
    laneAddrs(0xb000, 0x40, addrs);
    const auto fill = [&](SemBuilder &sb) {
        sb.boxTest(addrs, kFullMask, rtindexBoxShape());
        sb.triTest(addrs, 48, 0xffffu);
        sb.keyCompareProbe(addrs, 128, 0xffu);
    };
    // RTIndeX-style ops are on the RT unit in EVERY configuration.
    for (const Lowering &low : {Lowering::baseline(), Lowering::hsu(),
                                Lowering::partial(0.0)}) {
        const KernelTrace t = lowerOne(fill, low);
        const auto &ops = t.warps[0].ops;
        ASSERT_EQ(ops.size(), 3u);
        EXPECT_EQ(ops[0].hsuMode, HsuMode::RayBox);
        EXPECT_EQ(ops[0].origin, TraceOrigin::BoxTest);
        EXPECT_EQ(ops[1].hsuMode, HsuMode::RayTri);
        EXPECT_EQ(ops[1].bytesPerLane, 48u);
        EXPECT_EQ(ops[1].origin, TraceOrigin::TriTest);
        EXPECT_EQ(ops[2].hsuOp, HsuOpcode::KeyCompare);
        EXPECT_EQ(ops[2].origin, TraceOrigin::KeyCompare);
        for (const auto &op : ops)
            EXPECT_EQ(op.type, OpType::HsuOp);
    }
}

/** Four lane-parallel distance batches (each one offload site). */
void
fourDistances(SemBuilder &sb)
{
    std::uint64_t addrs[kWarpSize];
    laneAddrs(0xc000, 0x40, addrs);
    for (int i = 0; i < 4; ++i)
        sb.distanceLanes(3, addrs, kFullMask, flannDistanceShape(3));
}

TEST(Lower, PartialModuloNEndpointsMatchBaselineAndHsu)
{
    EXPECT_EQ(traceFingerprint(lowerOne(fourDistances,
                                        Lowering::partial(0.0))),
              traceFingerprint(lowerOne(fourDistances,
                                        Lowering::baseline())));
    EXPECT_EQ(traceFingerprint(lowerOne(fourDistances,
                                        Lowering::partial(1.0))),
              traceFingerprint(lowerOne(fourDistances,
                                        Lowering::hsu())));
}

TEST(Lower, PartialModuloNSpreadsEvenly)
{
    // f = 0.5 over sites 0..3: floor((i+1)/2) > floor(i/2) at i = 1, 3.
    const KernelTrace t =
        lowerOne(fourDistances, Lowering::partial(0.5));
    const auto &ops = t.warps[0].ops;
    // Offloaded batch = 1 op; baseline batch = 2 gathers + 1 alu.
    ASSERT_EQ(ops.size(), 2u * 3 + 2u * 1);
    EXPECT_EQ(ops[0].type, OpType::Load);  // site 0: baseline
    EXPECT_EQ(ops[3].type, OpType::HsuOp); // site 1: offloaded
    EXPECT_EQ(ops[4].type, OpType::Load);  // site 2: baseline
    EXPECT_EQ(ops[7].type, OpType::HsuOp); // site 3: offloaded
}

TEST(Lower, PartialByKindSelectsKinds)
{
    std::uint64_t addrs[kWarpSize];
    laneAddrs(0xd000, 0x40, addrs);
    const auto fill = [&](SemBuilder &sb) {
        sb.distanceLanes(3, addrs, kFullMask, flannDistanceShape(3));
        sb.keyCompareScan(0x9000, 64);
    };
    const KernelTrace t = lowerOne(
        fill, Lowering::partialByKind(Lowering::kindBit(SemKind::Distance)));
    const auto &ops = t.warps[0].ops;
    // Distance offloaded (1 op), key scan on the baseline path
    // (2 chunks x (load + alu) + reduce).
    ASSERT_EQ(ops.size(), 1u + 5u);
    EXPECT_EQ(ops[0].type, OpType::HsuOp);
    EXPECT_EQ(ops[0].hsuMode, HsuMode::Euclid);
    EXPECT_EQ(ops[1].type, OpType::Load);
    EXPECT_EQ(ops[1].origin, TraceOrigin::KeyCompare);
}

TEST(Lower, OriginStatsTrackRealizedOffload)
{
    const auto fill = [](SemBuilder &sb) {
        std::uint64_t addrs[kWarpSize];
        laneAddrs(0xe000, 0x40, addrs);
        sb.alu(10); // generic prologue
        sb.distanceLanes(3, addrs, kFullMask, flannDistanceShape(3));
    };
    {
        const TraceStats s =
            analyzeTrace(lowerOne(fill, Lowering::baseline()));
        const auto &dist =
            s.byOrigin[static_cast<unsigned>(TraceOrigin::Distance)];
        EXPECT_EQ(dist.hsuInstructions, 0u);
        EXPECT_EQ(dist.loadInstructions, 2u);
        EXPECT_EQ(dist.aluInstructions, 23u);
        EXPECT_DOUBLE_EQ(dist.offloadedFraction(), 0.0);
        EXPECT_DOUBLE_EQ(s.semanticOffloadFraction(), 0.0);
    }
    {
        const TraceStats s = analyzeTrace(lowerOne(fill, Lowering::hsu()));
        const auto &dist =
            s.byOrigin[static_cast<unsigned>(TraceOrigin::Distance)];
        EXPECT_EQ(dist.instructions, dist.hsuInstructions);
        EXPECT_DOUBLE_EQ(dist.offloadedFraction(), 1.0);
        EXPECT_DOUBLE_EQ(s.semanticOffloadFraction(), 1.0);
        // The generic prologue never counts toward semantic offload.
        const auto &gen =
            s.byOrigin[static_cast<unsigned>(TraceOrigin::Generic)];
        EXPECT_EQ(gen.aluInstructions, 10u);
    }
}

} // namespace
} // namespace hsu
