/**
 * @file
 * Trace builder tests: op encoding, address pools, token rotation, and
 * mask helpers.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "sim/trace.hh"

namespace hsu
{
namespace
{

TEST(TraceBuilder, AluBlocksCoalesceCounts)
{
    WarpTrace wt;
    TraceBuilder tb(wt);
    tb.alu(17);
    tb.alu(0); // dropped
    tb.shared(3);
    ASSERT_EQ(wt.ops.size(), 2u);
    EXPECT_EQ(wt.ops[0].type, OpType::Alu);
    EXPECT_EQ(wt.ops[0].count, 17u);
    EXPECT_EQ(wt.ops[1].type, OpType::Shared);
    EXPECT_EQ(wt.ops[1].count, 3u);
}

TEST(TraceBuilder, PatternAddressing)
{
    WarpTrace wt;
    TraceBuilder tb(wt);
    tb.loadPattern(0x1000, 8, 4);
    const TraceOp &op = wt.ops[0];
    EXPECT_EQ(wt.laneAddr(op, 0), 0x1000u);
    EXPECT_EQ(wt.laneAddr(op, 5), 0x1000u + 40);
    EXPECT_EQ(wt.laneAddr(op, 31), 0x1000u + 248);
}

TEST(TraceBuilder, GatherPoolAddressing)
{
    WarpTrace wt;
    TraceBuilder tb(wt);
    std::uint64_t addrs[kWarpSize];
    for (unsigned l = 0; l < kWarpSize; ++l)
        addrs[l] = 1000 + l * l;
    tb.loadGather(addrs, 4, kFullMask);
    const TraceOp &op = wt.ops[0];
    for (unsigned l = 0; l < kWarpSize; ++l)
        EXPECT_EQ(wt.laneAddr(op, l), 1000 + l * l);
}

TEST(TraceBuilder, TokensRotateAndDiffer)
{
    WarpTrace wt;
    TraceBuilder tb(wt);
    std::set<std::uint8_t> toks;
    for (int i = 0; i < 16; ++i)
        toks.insert(tb.loadPattern(0x1000 + i * 256, 4, 4));
    EXPECT_EQ(toks.size(), 16u); // all distinct within the window
    // The 17th reuses an id (the rotor wraps).
    const auto again = tb.loadPattern(0x9000, 4, 4);
    EXPECT_TRUE(toks.count(again));
}

TEST(TraceBuilder, TokenMaskHelper)
{
    EXPECT_EQ(TraceBuilder::tokenMask(kNoToken), 0u);
    EXPECT_EQ(TraceBuilder::tokenMask(0), 1u);
    EXPECT_EQ(TraceBuilder::tokenMask(5), 32u);
}

TEST(TraceBuilder, HsuOpEncoding)
{
    WarpTrace wt;
    TraceBuilder tb(wt);
    std::uint64_t addrs[kWarpSize] = {};
    const auto tok = tb.hsuOp(HsuOpcode::PointAngular, HsuMode::Angular,
                              addrs, 32, 9, 0xff, 0x3);
    const TraceOp &op = wt.ops[0];
    EXPECT_EQ(op.type, OpType::HsuOp);
    EXPECT_EQ(op.hsuOp, HsuOpcode::PointAngular);
    EXPECT_EQ(op.hsuMode, HsuMode::Angular);
    EXPECT_EQ(op.count, 9u);
    EXPECT_EQ(op.bytesPerLane, 32u);
    EXPECT_EQ(op.activeMask, 0xffu);
    EXPECT_EQ(op.consumesMask, 0x3u);
    EXPECT_NE(tok, kNoToken);
    EXPECT_TRUE(test::traceWellFormed(wt));
}

TEST(TraceBuilder, KernelTraceTotals)
{
    KernelTrace kt;
    for (int w = 0; w < 3; ++w) {
        kt.warps.emplace_back();
        TraceBuilder tb(kt.warps.back());
        tb.alu(1);
        tb.loadPattern(0, 4, 4);
    }
    EXPECT_EQ(kt.totalOps(), 6u);
    EXPECT_EQ(test::countOps(kt, OpType::Load), 3u);
}

} // namespace
} // namespace hsu
