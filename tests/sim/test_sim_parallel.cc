/**
 * @file
 * Intra-simulation parallelism bit-identity: the event-horizon loop
 * (simJobs > 1) must be a pure scheduling change. Every golden
 * workload and synthetic trace produces the same RunResult and the
 * same full StatGroup dump across HSU_SIM_JOBS levels, with and
 * without the per-SM event cache, and against the single-stepped
 * no-skip reference. Only the skip diagnostics ("sim.ff_cycles",
 * "sim.horizon_cycles") may differ between loop flavors.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "search/runner.hh"
#include "sim/gpu.hh"

namespace hsu
{
namespace
{

void
expectSameDump(const StatGroup &a, const StatGroup &b)
{
    const auto da = a.dump();
    const auto db = b.dump();
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
        ASSERT_EQ(da[i].first, db[i].first);
        // The only mode-dependent counters: how many cycles each loop
        // flavor skipped, globally vs per SM.
        if (da[i].first == "sim.ff_cycles" ||
            da[i].first == "sim.horizon_cycles") {
            continue;
        }
        EXPECT_EQ(da[i].second, db[i].second) << da[i].first;
    }
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrsIssued, b.instrsIssued);
    EXPECT_EQ(a.hsuCompleted, b.hsuCompleted);
    EXPECT_EQ(a.l2LinesAccessed, b.l2LinesAccessed);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.dramRowLocality, b.dramRowLocality);
    EXPECT_EQ(a.offloadableFraction, b.offloadableFraction);
}

KernelTrace
mixedTrace(unsigned warps, std::uint64_t seed)
{
    Rng rng(seed);
    KernelTrace kt;
    for (unsigned w = 0; w < warps; ++w) {
        kt.warps.emplace_back();
        TraceBuilder tb(kt.warps.back());
        for (int i = 0; i < 30; ++i) {
            const auto roll = rng.nextBounded(4);
            if (roll == 0) {
                tb.alu(1 + static_cast<unsigned>(rng.nextBounded(8)));
            } else if (roll == 1) {
                tb.shared(1 + static_cast<unsigned>(rng.nextBounded(4)));
            } else if (roll == 2) {
                const auto tok = tb.loadPattern(
                    0x100000 + rng.nextBounded(1 << 20) * 64, 4, 4);
                tb.alu(2, kFullMask, TraceBuilder::tokenMask(tok));
            } else {
                std::uint64_t addrs[kWarpSize];
                for (unsigned l = 0; l < kWarpSize; ++l) {
                    addrs[l] =
                        0x800000 + rng.nextBounded(1 << 18) * 128;
                }
                const auto tok =
                    tb.hsuOp(HsuOpcode::PointEuclid, HsuMode::Euclid,
                             addrs, 64,
                             1 + static_cast<unsigned>(
                                 rng.nextBounded(4)),
                             0xffffu);
                tb.alu(1, kFullMask, TraceBuilder::tokenMask(tok));
            }
        }
    }
    return kt;
}

KernelTrace
loadStallTrace(unsigned warps, std::uint64_t seed)
{
    // Load -> dependent ALU per warp: long DRAM stalls that give the
    // per-SM skipper real gaps to jump, with mixed offloadable flags
    // so stall attribution is order-sensitive.
    Rng rng(seed);
    KernelTrace kt;
    for (unsigned w = 0; w < warps; ++w) {
        kt.warps.emplace_back();
        TraceBuilder tb(kt.warps.back());
        for (unsigned i = 0; i < 12; ++i) {
            const auto tok = tb.loadPattern(
                0x100000 + rng.nextBounded(1 << 20) * 64, 4, 4);
            tb.alu(1 + (w % 3), kFullMask,
                   TraceBuilder::tokenMask(tok), (w + i) % 2 == 0);
        }
    }
    return kt;
}

TEST(SimParallel, GoldenWorkloadsBitIdenticalAcrossSimJobs)
{
    // Every golden workload, Baseline + Hsu runs: identical RunResult
    // and full stat dump at simJobs 1 (serial reference), 2, and 8.
    GpuConfig gpu;
    gpu.numSms = 2;
    gpu.finalize();
    RunnerOptions tiny;
    tiny.ggnnQueries = 32;
    tiny.pointQueries = 64;
    tiny.keyQueries = 64;

    for (const auto &[algo, id] :
         {std::pair{Algo::Btree, DatasetId::BTree10k},
          std::pair{Algo::Bvhnn, DatasetId::Random10k},
          std::pair{Algo::Flann, DatasetId::Bunny},
          std::pair{Algo::Ggnn, DatasetId::Sift10k}}) {
        GpuConfig serial = gpu;
        serial.simJobs = 1;
        const WorkloadResult ref =
            runWorkload(algo, id, serial, tiny);
        for (const unsigned jobs : {2u, 8u}) {
            GpuConfig par = gpu;
            par.simJobs = jobs;
            const WorkloadResult got =
                runWorkload(algo, id, par, tiny);
            SCOPED_TRACE(got.label + " jobs=" + std::to_string(jobs));
            expectSameResult(ref.base, got.base);
            expectSameResult(ref.hsu, got.hsu);
            expectSameDump(ref.baseStats, got.baseStats);
            expectSameDump(ref.hsuStats, got.hsuStats);
        }
    }
}

TEST(SimParallel, ParallelSkipMatchesSerialNoSkip)
{
    // The strongest cross-check: the horizon loop with all skipping
    // machinery on vs the single-stepped reference that ticks every
    // cycle and asserts every predicted gap really was eventless.
    for (const auto policy :
         {SchedulerPolicy::Gto, SchedulerPolicy::RoundRobin}) {
        for (const bool stally : {false, true}) {
            const KernelTrace trace = stally ? loadStallTrace(16, 47)
                                             : mixedTrace(24, 47);
            GpuConfig par;
            par.numSms = 4;
            par.scheduler = policy;
            par.simJobs = 8;
            par.finalize();
            GpuConfig ref = par;
            ref.simJobs = 1;
            ref.noSkip = 1;

            StatGroup par_stats, ref_stats;
            const RunResult p = simulateKernel(par, trace, par_stats);
            const RunResult r = simulateKernel(ref, trace, ref_stats);
            SCOPED_TRACE(stally ? "loadStallTrace" : "mixedTrace");
            expectSameResult(p, r);
            expectSameDump(par_stats, ref_stats);
            EXPECT_EQ(ref_stats.get("sim.ff_cycles"), 0.0);
            EXPECT_EQ(ref_stats.get("sim.horizon_cycles"), 0.0);
            if (stally) {
                // The per-SM skipper must actually skip on this trace.
                EXPECT_GT(par_stats.get("sim.horizon_cycles"), 0.0);
            }
        }
    }
}

TEST(SimParallel, EventCacheDisabledBitIdentical)
{
    // eventCache=false degenerates the horizon loop to full per-cycle
    // lockstep (the A/B baseline for the cache): still identical.
    const KernelTrace trace = mixedTrace(24, 53);
    GpuConfig serial;
    serial.numSms = 4;
    serial.simJobs = 1;
    serial.finalize();
    GpuConfig par = serial;
    par.simJobs = 8;
    par.eventCache = false;

    StatGroup s1, s2;
    const RunResult r1 = simulateKernel(serial, trace, s1);
    const RunResult r2 = simulateKernel(par, trace, s2);
    expectSameResult(r1, r2);
    expectSameDump(s1, s2);
    // With the cache off every SM ticks every visited cycle.
    EXPECT_EQ(s2.get("sim.horizon_cycles"), 0.0);
}

TEST(SimParallel, SingleSmHorizonMatchesSerial)
{
    // Degenerate shape: one SM, many requested jobs. The horizon loop
    // must collapse cleanly (no team, pure per-SM skipping).
    const KernelTrace trace = loadStallTrace(8, 59);
    GpuConfig serial;
    serial.numSms = 1;
    serial.simJobs = 1;
    serial.finalize();
    GpuConfig par = serial;
    par.simJobs = 8;

    StatGroup s1, s2;
    const RunResult r1 = simulateKernel(serial, trace, s1);
    const RunResult r2 = simulateKernel(par, trace, s2);
    expectSameResult(r1, r2);
    expectSameDump(s1, s2);
}

} // namespace
} // namespace hsu
