/**
 * @file
 * LSU tests: intra-warp coalescing and group completion semantics.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "sim/lsu.hh"

namespace hsu
{
namespace
{

TEST(Coalesce, PatternLoadOneLine)
{
    WarpTrace wt;
    TraceBuilder tb(wt);
    tb.loadPattern(0x1000, 4, 4); // 32 lanes x 4B = 128B
    const auto lines = coalesceLines(wt, wt.ops[0], 128);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u / 128);
}

TEST(Coalesce, StridedLoadManyLines)
{
    WarpTrace wt;
    TraceBuilder tb(wt);
    tb.loadPattern(0x1000, 128, 4); // one line per lane
    EXPECT_EQ(coalesceLines(wt, wt.ops[0], 128).size(), 32u);
}

TEST(Coalesce, InactiveLanesSkipped)
{
    WarpTrace wt;
    TraceBuilder tb(wt);
    tb.loadPattern(0x1000, 128, 4, 0x0000000f); // 4 lanes
    EXPECT_EQ(coalesceLines(wt, wt.ops[0], 128).size(), 4u);
}

TEST(Coalesce, StraddlingAccessTouchesBothLines)
{
    WarpTrace wt;
    TraceBuilder tb(wt);
    // One lane, 8 bytes starting 4 bytes before a line boundary.
    std::uint64_t addrs[kWarpSize] = {};
    addrs[0] = 128 - 4;
    tb.loadGather(addrs, 8, 0x1);
    const auto lines = coalesceLines(wt, wt.ops[0], 128);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0u);
    EXPECT_EQ(lines[1], 1u);
}

TEST(Coalesce, DuplicateAddressesDeduplicated)
{
    WarpTrace wt;
    TraceBuilder tb(wt);
    std::uint64_t addrs[kWarpSize];
    for (unsigned l = 0; l < kWarpSize; ++l)
        addrs[l] = 0x2000; // all lanes same address
    tb.loadGather(addrs, 4, kFullMask);
    EXPECT_EQ(coalesceLines(wt, wt.ops[0], 128).size(), 1u);
}

struct LsuFixture : public ::testing::Test
{
    StatGroup stats;
    CacheParams cp{.name = "l1", .sizeBytes = 8192, .assoc = 4,
                   .lineBytes = 128, .hitLatency = 3, .mshrEntries = 8,
                   .mshrMergesPerEntry = 4, .missQueueCapacity = 8};
    Cache l1{cp, stats};
    Lsu lsu{8, l1, stats, "lsu"};
    std::uint64_t now = 0;

    LsuFixture()
    {
        l1.setSendLower([this](std::uint64_t line, bool write,
                               std::uint64_t t) {
            if (!write)
                fills.emplace_back(t + 15, line);
            return true;
        });
    }

    std::vector<std::pair<std::uint64_t, std::uint64_t>> fills;

    void
    tickAll(bool grant = true)
    {
        for (auto it = fills.begin(); it != fills.end();) {
            if (it->first <= now) {
                l1.fill(it->second, now);
                it = fills.erase(it);
            } else {
                ++it;
            }
        }
        l1.tick(now);
        lsu.tick(grant, now);
        ++now;
    }
};

TEST_F(LsuFixture, GroupCompletesWhenAllLinesReturn)
{
    int done = 0;
    ASSERT_TRUE(lsu.issue({10, 11, 12}, false, [&] { ++done; }));
    for (int i = 0; i < 100 && done == 0; ++i)
        tickAll();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(stats.get("lsu.line_reqs"), 3.0);
    EXPECT_EQ(stats.get("lsu.mem_instrs"), 1.0);
}

TEST_F(LsuFixture, QueueCapacityRefusesOversizedIssue)
{
    std::vector<std::uint64_t> many;
    for (std::uint64_t i = 0; i < 9; ++i)
        many.push_back(100 + i);
    EXPECT_FALSE(lsu.issue(many, false, nullptr)); // queue cap 8
    std::vector<std::uint64_t> fits(many.begin(), many.begin() + 8);
    EXPECT_TRUE(lsu.issue(fits, false, nullptr));
    EXPECT_FALSE(lsu.issue({500}, false, nullptr)); // now full
}

TEST_F(LsuFixture, NoPortNoDrain)
{
    ASSERT_TRUE(lsu.issue({42}, false, nullptr));
    for (int i = 0; i < 20; ++i)
        tickAll(false);
    EXPECT_TRUE(lsu.wantsAccess());
    for (int i = 0; i < 100 && lsu.wantsAccess(); ++i)
        tickAll(true);
    EXPECT_FALSE(lsu.wantsAccess());
}

TEST_F(LsuFixture, WritesFireAndForget)
{
    int done = 0;
    ASSERT_TRUE(lsu.issue({7}, true, [&] { ++done; }));
    for (int i = 0; i < 50 && done == 0; ++i)
        tickAll();
    EXPECT_EQ(done, 1);
}

} // namespace
} // namespace hsu
