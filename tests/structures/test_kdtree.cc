/**
 * @file
 * k-d tree tests: exact kNN equals brute force across dimensions,
 * sizes, and leaf sizes; structural validation; approximation budget.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "structures/kdtree.hh"

namespace hsu
{
namespace
{

struct KdCase
{
    std::size_t n;
    unsigned dim;
    unsigned leafSize;
};

class KdTreeSweep : public ::testing::TestWithParam<KdCase>
{
};

TEST_P(KdTreeSweep, ExactKnnMatchesBruteForce)
{
    const auto [n, dim, leaf] = GetParam();
    const PointSet pts = test::randomCloud(n, dim, n * dim + leaf);
    const KdTree tree = KdTree::build(pts, leaf);
    EXPECT_TRUE(tree.validate());

    const PointSet queries = test::randomCloud(20, dim, 777);
    const unsigned k = std::min<std::size_t>(5, n);
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto got = tree.knn(queries[q], k);
        const auto want = test::bruteKnn(pts, queries[q], k);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_FLOAT_EQ(got[i].dist2, want[i].dist2)
                << "q=" << q << " i=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeSweep,
    ::testing::Values(KdCase{1, 3, 8}, KdCase{10, 3, 2},
                      KdCase{100, 3, 8}, KdCase{500, 3, 16},
                      KdCase{100, 2, 4}, KdCase{200, 8, 8},
                      KdCase{150, 16, 8}, KdCase{64, 1, 4},
                      KdCase{333, 5, 32}));

TEST(KdTree, EmptyTree)
{
    const PointSet pts(3);
    const KdTree tree = KdTree::build(pts);
    EXPECT_TRUE(tree.validate());
    EXPECT_TRUE(tree.knn(nullptr, 0).empty());
}

TEST(KdTree, KLargerThanN)
{
    const PointSet pts = test::randomCloud(4, 3, 3);
    const KdTree tree = KdTree::build(pts, 2);
    const float q[3] = {0, 0, 0};
    const auto got = tree.knn(q, 10);
    EXPECT_EQ(got.size(), 4u);
}

TEST(KdTree, ApproximateBudgetDegradesGracefully)
{
    const PointSet pts = test::randomCloud(2000, 3, 55);
    const KdTree tree = KdTree::build(pts, 8);
    const PointSet queries = test::randomCloud(50, 3, 56);
    unsigned exact_matches = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto approx = tree.knn(queries[q], 1, 64);
        const auto exact = test::bruteKnn(pts, queries[q], 1);
        ASSERT_EQ(approx.size(), 1u);
        // Budgeted search must return a valid point, and usually the
        // true nearest (best-bin-first is a good heuristic).
        EXPECT_GE(approx[0].dist2, exact[0].dist2);
        if (approx[0].index == exact[0].index)
            ++exact_matches;
    }
    EXPECT_GE(exact_matches, 40u); // >= 80% recall@1 with tiny budget
}

TEST(KdTree, DepthIsLogarithmicForBalancedData)
{
    const PointSet pts = test::randomCloud(1024, 3, 77);
    const KdTree tree = KdTree::build(pts, 8);
    // 1024/8 = 128 leaves -> depth ~8; allow slack for uneven splits.
    EXPECT_LE(tree.depth(), 12u);
    EXPECT_GE(tree.depth(), 7u);
}

TEST(KdTree, DuplicatePoints)
{
    PointSet pts(3);
    for (int i = 0; i < 64; ++i)
        pts.add(Vec3{1, 1, 1});
    const KdTree tree = KdTree::build(pts, 4);
    EXPECT_TRUE(tree.validate());
    const float q[3] = {1, 1, 1};
    const auto got = tree.knn(q, 3);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_FLOAT_EQ(got[0].dist2, 0.0f);
}

TEST(KdTree, LeafRangesCoverAllPoints)
{
    const PointSet pts = test::randomCloud(500, 4, 88);
    const KdTree tree = KdTree::build(pts, 16);
    std::size_t covered = 0;
    for (const auto &node : tree.nodes()) {
        if (node.isLeaf())
            covered += node.count;
    }
    EXPECT_EQ(covered, 500u);
}

} // namespace
} // namespace hsu
