/**
 * @file
 * Hierarchical graph (GGNN/HNSW-style) tests: structural invariants,
 * recall against brute force, determinism, and both metrics.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "structures/graph.hh"

namespace hsu
{
namespace
{

TEST(HnswGraph, ValidatesOnRandomData)
{
    const PointSet pts = test::randomCloud(500, 8, 31);
    const HnswGraph g = HnswGraph::build(pts, Metric::Euclidean);
    EXPECT_TRUE(g.validate());
    EXPECT_GE(g.numLayers(), 1u);
    EXPECT_EQ(g.layerNodes(0).size(), 500u);
}

TEST(HnswGraph, EmptyAndTiny)
{
    const PointSet empty(4);
    const HnswGraph g0 = HnswGraph::build(empty, Metric::Euclidean);
    EXPECT_TRUE(g0.knn(nullptr, 3).empty());

    PointSet one(2);
    const float p[2] = {1, 2};
    one.add(p);
    const HnswGraph g1 = HnswGraph::build(one, Metric::Euclidean);
    const float q[2] = {0, 0};
    const auto r = g1.knn(q, 3);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].index, 0u);
}

TEST(HnswGraph, RecallAtTenEuclidean)
{
    const PointSet pts = test::randomCloud(2000, 16, 91);
    const HnswGraph g = HnswGraph::build(pts, Metric::Euclidean);
    const PointSet queries = test::randomCloud(40, 16, 92);

    double recall = 0;
    const unsigned k = 10;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto got = g.knn(queries[q], k, {64});
        const auto want = test::bruteKnn(pts, queries[q], k);
        std::size_t hits = 0;
        for (const auto &w : want) {
            for (const auto &got_n : got) {
                if (got_n.index == w.index) {
                    ++hits;
                    break;
                }
            }
        }
        recall += static_cast<double>(hits) / k;
    }
    recall /= static_cast<double>(queries.size());
    EXPECT_GE(recall, 0.85) << "ANN recall collapsed";
}

TEST(HnswGraph, RecallAtTenAngular)
{
    const PointSet pts = test::randomCloud(1500, 12, 93);
    const HnswGraph g = HnswGraph::build(pts, Metric::Angular);
    const PointSet queries = test::randomCloud(30, 12, 94);

    double recall = 0;
    const unsigned k = 10;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto got = g.knn(queries[q], k, {64});
        // Brute force under the angular metric.
        std::vector<Neighbor> all;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            all.push_back({static_cast<std::uint32_t>(i),
                           metricDist(Metric::Angular, queries[q],
                                      pts[i], 12)});
        }
        std::sort(all.begin(), all.end());
        std::size_t hits = 0;
        for (unsigned w = 0; w < k; ++w) {
            for (const auto &got_n : got) {
                if (got_n.index == all[w].index) {
                    ++hits;
                    break;
                }
            }
        }
        recall += static_cast<double>(hits) / k;
    }
    recall /= static_cast<double>(queries.size());
    EXPECT_GE(recall, 0.8);
}

TEST(HnswGraph, DeterministicBuild)
{
    const PointSet pts = test::randomCloud(300, 6, 95);
    const HnswGraph a = HnswGraph::build(pts, Metric::Euclidean);
    const HnswGraph b = HnswGraph::build(pts, Metric::Euclidean);
    ASSERT_EQ(a.numLayers(), b.numLayers());
    for (unsigned l = 0; l < a.numLayers(); ++l) {
        for (std::uint32_t n = 0; n < pts.size(); ++n) {
            for (unsigned j = 0; j < a.layerDegree(l); ++j) {
                EXPECT_EQ(a.neighbors(l, n)[j], b.neighbors(l, n)[j]);
            }
        }
    }
}

TEST(HnswGraph, MetricDistReference)
{
    const float a[3] = {1, 0, 0};
    const float b[3] = {0, 1, 0};
    EXPECT_FLOAT_EQ(metricDist(Metric::Euclidean, a, b, 3), 2.0f);
    EXPECT_FLOAT_EQ(metricDist(Metric::Angular, a, b, 3), 1.0f);
    EXPECT_FLOAT_EQ(metricDist(Metric::Angular, a, a, 3), 0.0f);
}

TEST(HnswGraph, UpperLayersAreSparser)
{
    const PointSet pts = test::randomCloud(2000, 4, 96);
    const HnswGraph g = HnswGraph::build(pts, Metric::Euclidean);
    for (unsigned l = 1; l < g.numLayers(); ++l)
        EXPECT_LT(g.layerNodes(l).size(), g.layerNodes(l - 1).size());
}

} // namespace
} // namespace hsu
