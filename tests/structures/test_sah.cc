/**
 * @file
 * Binned-SAH builder, tree-quality metric, and refit tests.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "structures/lbvh.hh"

namespace hsu
{
namespace
{

class SahSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SahSizes, StructureValidates)
{
    const std::size_t n = GetParam();
    const PointSet pts = test::randomCloud(n, 3, n + 7);
    const Lbvh bvh = Lbvh::buildSahFromPoints(pts, 0.1f);
    EXPECT_EQ(bvh.numLeaves(), n);
    EXPECT_TRUE(bvh.validate());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SahSizes,
                         ::testing::Values(0u, 1u, 2u, 3u, 9u, 33u,
                                           128u, 500u));

TEST(SahBuild, SameQueryResultsAsMorton)
{
    const float r = 0.35f;
    const PointSet pts = test::randomCloud(400, 3, 61);
    const Lbvh morton = Lbvh::buildFromPoints(pts, r);
    const Lbvh sah = Lbvh::buildSahFromPoints(pts, r);
    Rng rng(62);
    for (int t = 0; t < 60; ++t) {
        const Vec3 q{rng.uniform(-11, 11), rng.uniform(-11, 11),
                     rng.uniform(-11, 11)};
        EXPECT_EQ(morton.pointQuery(q), sah.pointQuery(q));
    }
}

TEST(SahBuild, QualityBeatsMortonOnClusteredData)
{
    // SAH's advantage shows on unevenly distributed primitives.
    PointSet pts(3);
    Rng rng(63);
    for (int c = 0; c < 6; ++c) {
        const Vec3 center{rng.uniform(-20, 20), rng.uniform(-20, 20),
                          rng.uniform(-20, 20)};
        for (int i = 0; i < 150; ++i) {
            pts.add(center + Vec3{rng.gaussian(0, 0.3f),
                                  rng.gaussian(0, 0.3f),
                                  rng.gaussian(0, 0.3f)});
        }
    }
    const Lbvh morton = Lbvh::buildFromPoints(pts, 0.1f);
    const Lbvh sah = Lbvh::buildSahFromPoints(pts, 0.1f);
    EXPECT_LE(sah.sahCost(), morton.sahCost() * 1.05);
    EXPECT_GT(sah.sahCost(), 0.0);
}

TEST(SahBuild, PrimitivePositionsPermutation)
{
    const PointSet pts = test::randomCloud(200, 3, 64);
    const Lbvh sah = Lbvh::buildSahFromPoints(pts, 0.1f);
    const auto pos = sah.primitivePositions();
    std::vector<bool> seen(200, false);
    for (const auto p : pos) {
        ASSERT_LT(p, 200u);
        EXPECT_FALSE(seen[p]);
        seen[p] = true;
    }
}

TEST(Refit, FollowsMovedPrimitives)
{
    PointSet pts = test::randomCloud(300, 3, 65);
    Lbvh bvh = Lbvh::buildFromPoints(pts, 0.2f);
    ASSERT_TRUE(bvh.validate());

    // Move every point and refit (topology preserved).
    Rng rng(66);
    std::vector<Aabb> moved(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const Vec3 p = pts.vec3(i) + Vec3{rng.gaussian(0, 0.5f),
                                          rng.gaussian(0, 0.5f),
                                          rng.gaussian(0, 0.5f)};
        float *coords = pts.mutablePoint(i);
        coords[0] = p.x;
        coords[1] = p.y;
        coords[2] = p.z;
        moved[i] = Aabb::centered(p, 0.2f);
    }
    bvh.refit(moved);
    EXPECT_TRUE(bvh.validate());

    // Queries against the refit tree match brute force.
    for (int t = 0; t < 40; ++t) {
        const Vec3 q{rng.uniform(-11, 11), rng.uniform(-11, 11),
                     rng.uniform(-11, 11)};
        const auto got = bvh.pointQuery(q);
        std::vector<std::uint32_t> want;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            if (Aabb::centered(pts.vec3(i), 0.2f).contains(q))
                want.push_back(static_cast<std::uint32_t>(i));
        }
        EXPECT_EQ(got, want);
    }
}

TEST(Refit, WorksOnSahTree)
{
    PointSet pts = test::randomCloud(128, 3, 67);
    Lbvh bvh = Lbvh::buildSahFromPoints(pts, 0.15f);
    std::vector<Aabb> same(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i)
        same[i] = Aabb::centered(pts.vec3(i), 0.15f);
    bvh.refit(same); // no-op refit keeps a valid tree
    EXPECT_TRUE(bvh.validate());
}

TEST(SahCost, EmptyAndSingle)
{
    EXPECT_EQ(Lbvh::buildSah({}).sahCost(), 0.0);
    PointSet one(3);
    one.add(Vec3{1, 2, 3});
    EXPECT_EQ(Lbvh::buildSahFromPoints(one, 0.5f).sahCost(), 0.0);
}

} // namespace
} // namespace hsu
