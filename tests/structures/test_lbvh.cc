/**
 * @file
 * LBVH builder tests: structural validation across sizes, point-query
 * correctness against brute force, and BVH4 collapse invariants.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "structures/lbvh.hh"

namespace hsu
{
namespace
{

class LbvhSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(LbvhSizes, StructureValidates)
{
    const std::size_t n = GetParam();
    const PointSet pts = test::randomCloud(n, 3, n + 1);
    const Lbvh bvh = Lbvh::buildFromPoints(pts, 0.1f);
    EXPECT_EQ(bvh.numLeaves(), n);
    if (n > 0) {
        EXPECT_EQ(bvh.size(), 2 * n - 1);
    }
    EXPECT_TRUE(bvh.validate());
}

TEST_P(LbvhSizes, Bvh4CollapseValidates)
{
    const std::size_t n = GetParam();
    if (n == 0)
        return;
    const PointSet pts = test::randomCloud(n, 3, n + 2);
    const Lbvh bvh = Lbvh::buildFromPoints(pts, 0.1f);
    const Bvh4 wide = Bvh4::fromBinary(bvh);
    EXPECT_EQ(wide.numPrimitives(), n);
    EXPECT_TRUE(wide.validate());
    // A BVH4 should have at most as many inner nodes as the binary.
    EXPECT_LE(wide.size(), bvh.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, LbvhSizes,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 17u, 64u,
                                           100u, 257u, 1000u));

TEST(Lbvh, PointQueryMatchesBruteForce)
{
    const float r = 0.4f;
    const PointSet pts = test::randomCloud(300, 3, 42);
    const Lbvh bvh = Lbvh::buildFromPoints(pts, r);
    Rng rng(43);
    for (int t = 0; t < 100; ++t) {
        const Vec3 q{rng.uniform(-11, 11), rng.uniform(-11, 11),
                     rng.uniform(-11, 11)};
        const auto got = bvh.pointQuery(q);
        std::vector<std::uint32_t> want;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            if (Aabb::centered(pts.vec3(i), r).contains(q))
                want.push_back(static_cast<std::uint32_t>(i));
        }
        EXPECT_EQ(got, want) << "query " << t;
    }
}

TEST(Lbvh, DuplicatePointsHandled)
{
    // Identical Morton codes exercise the index tie-break.
    PointSet pts(3);
    for (int i = 0; i < 50; ++i)
        pts.add(Vec3{1.0f, 2.0f, 3.0f});
    for (int i = 0; i < 50; ++i)
        pts.add(Vec3{4.0f, 5.0f, 6.0f});
    const Lbvh bvh = Lbvh::buildFromPoints(pts, 0.1f);
    EXPECT_TRUE(bvh.validate());
    EXPECT_EQ(bvh.pointQuery({1, 2, 3}).size(), 50u);
}

TEST(Lbvh, FromTriangles)
{
    std::vector<Triangle> tris;
    Rng rng(7);
    for (std::uint32_t i = 0; i < 200; ++i) {
        const Vec3 base{rng.uniform(-5, 5), rng.uniform(-5, 5),
                        rng.uniform(-5, 5)};
        tris.push_back({base, base + Vec3{0.3f, 0, 0},
                        base + Vec3{0, 0.3f, 0}, i});
    }
    const Lbvh bvh = Lbvh::buildFromTriangles(tris);
    EXPECT_TRUE(bvh.validate());
    EXPECT_EQ(bvh.numLeaves(), tris.size());
}

TEST(Lbvh, PrimitivePositionsArePermutation)
{
    const PointSet pts = test::randomCloud(128, 3, 99);
    const Lbvh bvh = Lbvh::buildFromPoints(pts, 0.05f);
    const auto pos = bvh.primitivePositions();
    ASSERT_EQ(pos.size(), 128u);
    std::vector<bool> seen(128, false);
    for (const auto p : pos) {
        ASSERT_LT(p, 128u);
        EXPECT_FALSE(seen[p]);
        seen[p] = true;
    }
}

TEST(Lbvh, MortonOrderClustersNeighbors)
{
    // Points in the same tight cluster should land in nearby leaves.
    PointSet pts(3);
    Rng rng(13);
    for (int c = 0; c < 8; ++c) {
        const Vec3 center{static_cast<float>(c % 2) * 10,
                          static_cast<float>((c / 2) % 2) * 10,
                          static_cast<float>(c / 4) * 10};
        for (int i = 0; i < 16; ++i) {
            pts.add(center + Vec3{rng.gaussian(0, 0.1f),
                                  rng.gaussian(0, 0.1f),
                                  rng.gaussian(0, 0.1f)});
        }
    }
    const Lbvh bvh = Lbvh::buildFromPoints(pts, 0.1f);
    const auto pos = bvh.primitivePositions();
    // Average in-cluster position spread should be far below the
    // global spread (128 leaves).
    double in_cluster = 0;
    for (int c = 0; c < 8; ++c) {
        std::uint32_t lo = ~0u, hi = 0;
        for (int i = 0; i < 16; ++i) {
            const auto p = pos[static_cast<std::size_t>(c * 16 + i)];
            lo = std::min(lo, p);
            hi = std::max(hi, p);
        }
        in_cluster += hi - lo;
    }
    EXPECT_LT(in_cluster / 8.0, 40.0);
}

TEST(Bvh4, SingleLeafTree)
{
    PointSet pts(3);
    pts.add(Vec3{0, 0, 0});
    const Lbvh bvh = Lbvh::buildFromPoints(pts, 1.0f);
    const Bvh4 wide = Bvh4::fromBinary(bvh);
    EXPECT_TRUE(wide.validate());
    EXPECT_EQ(wide.size(), 1u);
    EXPECT_TRUE(childIsLeaf(wide.nodes()[0].child[0]));
}

} // namespace
} // namespace hsu
