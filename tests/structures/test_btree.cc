/**
 * @file
 * B+tree tests: lookups equal std::map across orders and sizes, bulk
 * structure validation, and KEY_COMPARE/childSlot consistency.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "hsu/functional.hh"
#include "structures/btree.hh"

namespace hsu
{
namespace
{

std::vector<std::pair<std::uint32_t, std::uint32_t>>
randomPairs(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.emplace_back(
            static_cast<std::uint32_t>(rng.nextBounded(1u << 30)),
            static_cast<std::uint32_t>(i));
    }
    return out;
}

struct BtreeCase
{
    std::size_t n;
    unsigned order;
};

class BtreeSweep : public ::testing::TestWithParam<BtreeCase>
{
};

TEST_P(BtreeSweep, LookupsMatchStdMap)
{
    const auto [n, order] = GetParam();
    auto pairs = randomPairs(n, n + order);
    std::map<std::uint32_t, std::uint32_t> ref;
    for (const auto &[k, v] : pairs)
        ref.emplace(k, v); // first value wins, like BTree::build

    const BTree tree = BTree::build(pairs, order);
    EXPECT_TRUE(tree.validate());

    // Every present key.
    for (const auto &[k, v] : ref) {
        const auto got = tree.lookup(k);
        ASSERT_TRUE(got.has_value()) << "key " << k;
        EXPECT_EQ(*got, v);
    }
    // Absent keys.
    Rng rng(order * 7 + 1);
    for (int i = 0; i < 200; ++i) {
        const auto k =
            static_cast<std::uint32_t>(rng.nextBounded(1u << 30));
        EXPECT_EQ(tree.lookup(k).has_value(), ref.count(k) == 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BtreeSweep,
    ::testing::Values(BtreeCase{0, 256}, BtreeCase{1, 256},
                      BtreeCase{100, 4}, BtreeCase{1000, 8},
                      BtreeCase{1000, 16}, BtreeCase{5000, 64},
                      BtreeCase{20000, 256}, BtreeCase{177, 3},
                      BtreeCase{4096, 256}));

TEST(BTree, HeightShrinksWithOrder)
{
    auto pairs = randomPairs(10000, 1);
    const BTree small = BTree::build(pairs, 4);
    const BTree large = BTree::build(pairs, 256);
    EXPECT_GT(small.height(), large.height());
    EXPECT_LE(large.height(), 3u);
}

TEST(BTree, ChildSlotMatchesKeyCompareBitVector)
{
    // The paper's Table I semantics: the child to traverse to is the
    // popcount of the KEY_COMPARE bit vector.
    auto pairs = randomPairs(8000, 2);
    const BTree tree = BTree::build(pairs, 64);
    Rng rng(3);
    for (const auto &node : tree.nodes()) {
        if (node.leaf || node.keys.empty())
            continue;
        for (int i = 0; i < 8; ++i) {
            const auto key = static_cast<std::uint32_t>(
                rng.nextBounded(1u << 30));
            unsigned popcnt = 0;
            for (std::size_t c = 0; c < node.keys.size(); c += 36) {
                const unsigned count = static_cast<unsigned>(
                    std::min<std::size_t>(36, node.keys.size() - c));
                popcnt += static_cast<unsigned>(__builtin_popcountll(
                    keyCompare(key, node.keys.data() + c, count)));
            }
            EXPECT_EQ(BTree::childSlot(node, key), popcnt);
        }
    }
}

TEST(BTree, SeparatorsAreSorted)
{
    auto pairs = randomPairs(30000, 4);
    const BTree tree = BTree::build(pairs, 256);
    for (const auto &node : tree.nodes())
        EXPECT_TRUE(std::is_sorted(node.keys.begin(), node.keys.end()));
}

TEST(BTree, DuplicateKeysKeepFirst)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {
        {5, 100}, {5, 200}, {7, 300}};
    const BTree tree = BTree::build(pairs, 4);
    EXPECT_EQ(tree.lookup(5).value(), 100u);
    EXPECT_EQ(tree.lookup(7).value(), 300u);
}

TEST(BTree, MaxSeparatorsRespectOrder)
{
    auto pairs = randomPairs(50000, 5);
    const unsigned order = 256;
    const BTree tree = BTree::build(pairs, order);
    for (const auto &node : tree.nodes()) {
        if (!node.leaf) {
            EXPECT_LE(node.keys.size(), order - 1);
            EXPECT_EQ(node.children.size(), node.keys.size() + 1);
        }
    }
}

TEST(BTree, EmptyTreeLookupsMissGracefully)
{
    const BTree tree = BTree::build({}, 16);
    EXPECT_TRUE(tree.validate());
    EXPECT_FALSE(tree.lookup(42).has_value());
    EXPECT_EQ(tree.height(), 1u);
}

} // namespace
} // namespace hsu
