/**
 * @file
 * B+tree mutation tests: insert with splits, erase, range queries —
 * cross-checked against std::map through randomized operation streams.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "structures/btree.hh"

namespace hsu
{
namespace
{

TEST(BtreeInsert, GrowsFromEmpty)
{
    BTree tree = BTree::build({}, 8);
    for (std::uint32_t k = 0; k < 500; ++k)
        tree.insert(k * 3, k);
    EXPECT_TRUE(tree.validate());
    EXPECT_EQ(tree.size(), 500u);
    for (std::uint32_t k = 0; k < 500; ++k) {
        ASSERT_TRUE(tree.lookup(k * 3).has_value());
        EXPECT_EQ(*tree.lookup(k * 3), k);
        EXPECT_FALSE(tree.lookup(k * 3 + 1).has_value());
    }
    EXPECT_GT(tree.height(), 1u); // splits happened
}

TEST(BtreeInsert, OverwriteKeepsSize)
{
    BTree tree = BTree::build({}, 16);
    tree.insert(42, 1);
    tree.insert(42, 2);
    EXPECT_EQ(tree.size(), 1u);
    EXPECT_EQ(*tree.lookup(42), 2u);
}

class BtreeChurn : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BtreeChurn, RandomOpsMatchStdMap)
{
    const unsigned order = GetParam();
    BTree tree = BTree::build({}, order);
    std::map<std::uint32_t, std::uint32_t> ref;
    Rng rng(order * 31 + 5);

    for (int op = 0; op < 4000; ++op) {
        const auto key =
            static_cast<std::uint32_t>(rng.nextBounded(2000));
        const auto roll = rng.nextBounded(10);
        if (roll < 6) {
            const auto val = static_cast<std::uint32_t>(op);
            tree.insert(key, val);
            ref[key] = val;
        } else if (roll < 8) {
            EXPECT_EQ(tree.erase(key), ref.erase(key) == 1) << op;
        } else {
            const auto got = tree.lookup(key);
            const auto it = ref.find(key);
            ASSERT_EQ(got.has_value(), it != ref.end()) << op;
            if (got) {
                EXPECT_EQ(*got, it->second);
            }
        }
    }
    EXPECT_EQ(tree.size(), ref.size());
    // Full sweep at the end.
    for (const auto &[k, v] : ref)
        EXPECT_EQ(tree.lookup(k).value(), v);
}

INSTANTIATE_TEST_SUITE_P(Orders, BtreeChurn,
                         ::testing::Values(3u, 4u, 8u, 32u, 256u));

TEST(BtreeRange, MatchesStdMapRange)
{
    BTree tree = BTree::build({}, 16);
    std::map<std::uint32_t, std::uint32_t> ref;
    Rng rng(9);
    for (int i = 0; i < 3000; ++i) {
        const auto k =
            static_cast<std::uint32_t>(rng.nextBounded(100000));
        tree.insert(k, static_cast<std::uint32_t>(i));
        ref[k] = static_cast<std::uint32_t>(i);
    }
    for (int t = 0; t < 50; ++t) {
        auto lo = static_cast<std::uint32_t>(rng.nextBounded(100000));
        auto hi = static_cast<std::uint32_t>(rng.nextBounded(100000));
        if (lo > hi)
            std::swap(lo, hi);
        const auto got = tree.range(lo, hi);
        std::vector<std::pair<std::uint32_t, std::uint32_t>> want(
            ref.lower_bound(lo), ref.upper_bound(hi));
        EXPECT_EQ(got, want) << "range [" << lo << ", " << hi << "]";
    }
}

TEST(BtreeRange, EmptyAndInverted)
{
    BTree tree = BTree::build({}, 8);
    tree.insert(10, 1);
    EXPECT_TRUE(tree.range(20, 30).empty());
    EXPECT_TRUE(tree.range(30, 20).empty());
    ASSERT_EQ(tree.range(5, 15).size(), 1u);
    EXPECT_EQ(tree.range(10, 10).front().second, 1u);
}

TEST(BtreeInsert, IntoBulkLoadedTree)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (std::uint32_t i = 0; i < 10000; ++i)
        pairs.emplace_back(i * 2, i);
    BTree tree = BTree::build(pairs, 64);
    // Insert the odd keys.
    for (std::uint32_t i = 0; i < 2000; ++i)
        tree.insert(i * 2 + 1, 100000 + i);
    EXPECT_TRUE(tree.validate());
    EXPECT_EQ(tree.size(), 12000u);
    EXPECT_EQ(*tree.lookup(1001), 100500u);
    EXPECT_EQ(*tree.lookup(1000), 500u);
}

} // namespace
} // namespace hsu
