/**
 * @file
 * k-d tree radius-search tests against brute force.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "structures/kdtree.hh"

namespace hsu
{
namespace
{

std::vector<Neighbor>
bruteRadius(const PointSet &pts, const float *q, float r2)
{
    std::vector<Neighbor> out;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const float d2 = pointDist2(q, pts[i], pts.dim());
        if (d2 <= r2)
            out.push_back({static_cast<std::uint32_t>(i), d2});
    }
    std::sort(out.begin(), out.end());
    return out;
}

class RadiusSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RadiusSweep, MatchesBruteForce)
{
    const unsigned dim = GetParam();
    const PointSet pts = test::randomCloud(600, dim, dim * 11 + 1);
    const KdTree tree = KdTree::build(pts, 8);
    const PointSet queries = test::randomCloud(25, dim, dim * 11 + 2);
    for (std::size_t q = 0; q < queries.size(); ++q) {
        for (const float r : {0.5f, 2.0f, 6.0f}) {
            const auto got = tree.radiusSearch(queries[q], r * r);
            const auto want = bruteRadius(pts, queries[q], r * r);
            ASSERT_EQ(got.size(), want.size())
                << "q=" << q << " r=" << r;
            for (std::size_t i = 0; i < got.size(); ++i)
                EXPECT_EQ(got[i].index, want[i].index);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, RadiusSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(RadiusSearch, ZeroRadiusFindsExactPoint)
{
    const PointSet pts = test::randomCloud(100, 3, 12);
    const KdTree tree = KdTree::build(pts, 4);
    const auto hits = tree.radiusSearch(pts[17], 0.0f);
    ASSERT_GE(hits.size(), 1u);
    EXPECT_EQ(hits[0].index, 17u);
    EXPECT_EQ(hits[0].dist2, 0.0f);
}

TEST(RadiusSearch, EmptyTree)
{
    const PointSet pts(3);
    const KdTree tree = KdTree::build(pts);
    const float q[3] = {0, 0, 0};
    EXPECT_TRUE(tree.radiusSearch(q, 100.0f).empty());
}

TEST(RadiusSearch, HugeRadiusReturnsEverything)
{
    const PointSet pts = test::randomCloud(250, 4, 13);
    const KdTree tree = KdTree::build(pts, 16);
    const PointSet q = test::randomCloud(1, 4, 14);
    EXPECT_EQ(tree.radiusSearch(q[0], 1e12f).size(), 250u);
}

} // namespace
} // namespace hsu
