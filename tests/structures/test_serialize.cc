/**
 * @file
 * Serialization round-trip tests for every index type, including
 * malformed-stream rejection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../test_util.hh"
#include "structures/serialize.hh"

namespace hsu
{
namespace
{

TEST(Serialize, LbvhRoundTrip)
{
    const PointSet pts = test::randomCloud(300, 3, 81);
    const Lbvh original = Lbvh::buildFromPoints(pts, 0.2f);

    std::stringstream ss;
    saveLbvh(ss, original);
    const auto loaded = loadLbvh(ss);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->validate());
    EXPECT_EQ(loaded->size(), original.size());

    Rng rng(82);
    for (int i = 0; i < 30; ++i) {
        const Vec3 q{rng.uniform(-11, 11), rng.uniform(-11, 11),
                     rng.uniform(-11, 11)};
        EXPECT_EQ(loaded->pointQuery(q), original.pointQuery(q));
    }
}

TEST(Serialize, KdTreeRoundTrip)
{
    const PointSet pts = test::randomCloud(500, 5, 83);
    const KdTree original = KdTree::build(pts, 8);

    std::stringstream ss;
    saveKdTree(ss, original);
    const auto loaded = loadKdTree(ss, pts);
    ASSERT_TRUE(loaded.has_value());

    const PointSet queries = test::randomCloud(20, 5, 84);
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto a = original.knn(queries[q], 5);
        const auto b = loaded->knn(queries[q], 5);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i].index, b[i].index);
    }
}

TEST(Serialize, KdTreeRejectsWrongPointSet)
{
    const PointSet pts = test::randomCloud(100, 3, 85);
    const KdTree tree = KdTree::build(pts, 8);
    std::stringstream ss;
    saveKdTree(ss, tree);

    const PointSet other = test::randomCloud(101, 3, 86);
    EXPECT_FALSE(loadKdTree(ss, other).has_value());
}

TEST(Serialize, GraphRoundTrip)
{
    const PointSet pts = test::randomCloud(400, 8, 87);
    const HnswGraph original = HnswGraph::build(pts, Metric::Euclidean);

    std::stringstream ss;
    saveGraph(ss, original);
    const auto loaded = loadGraph(ss, pts);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->validate());
    EXPECT_EQ(loaded->numLayers(), original.numLayers());

    const PointSet queries = test::randomCloud(10, 8, 88);
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto a = original.knn(queries[q], 5);
        const auto b = loaded->knn(queries[q], 5);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i].index, b[i].index);
    }
}

TEST(Serialize, BTreeRoundTripSelfContained)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    Rng rng(89);
    for (int i = 0; i < 5000; ++i) {
        pairs.emplace_back(
            static_cast<std::uint32_t>(rng.nextBounded(1u << 24)),
            static_cast<std::uint32_t>(i));
    }
    const BTree original = BTree::build(pairs, 64);
    std::stringstream ss;
    saveBTree(ss, original);
    const auto loaded = loadBTree(ss);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->size(), original.size());
    for (int i = 0; i < 200; ++i) {
        const auto k =
            static_cast<std::uint32_t>(rng.nextBounded(1u << 24));
        EXPECT_EQ(loaded->lookup(k), original.lookup(k));
    }
}

TEST(Serialize, RejectsGarbage)
{
    std::stringstream empty;
    EXPECT_FALSE(loadLbvh(empty).has_value());

    std::stringstream junk("this is not an index");
    EXPECT_FALSE(loadBTree(junk).has_value());

    // Wrong blob kind: a BTree stream fed to the BVH loader.
    const BTree tree = BTree::build({{1, 2}}, 8);
    std::stringstream ss;
    saveBTree(ss, tree);
    EXPECT_FALSE(loadLbvh(ss).has_value());
}

TEST(Serialize, TruncatedStreamRejected)
{
    const PointSet pts = test::randomCloud(100, 3, 90);
    const Lbvh bvh = Lbvh::buildFromPoints(pts, 0.1f);
    std::stringstream ss;
    saveLbvh(ss, bvh);
    std::string blob = ss.str();
    blob.resize(blob.size() / 2);
    std::stringstream cut(blob);
    EXPECT_FALSE(loadLbvh(cut).has_value());
}

} // namespace
} // namespace hsu
