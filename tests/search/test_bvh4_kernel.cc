/**
 * @file
 * BVH4 traversal mode of the BVH-NN kernel (the Section VI-E ablation):
 * results must match the binary path and brute force; the trace must
 * use wide RAY_INTERSECT ops.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "search/bvhnn.hh"

namespace hsu
{
namespace
{

TEST(Bvh4Kernel, MatchesBinaryAndBruteForce)
{
    const float r = 0.5f;
    const PointSet pts = test::randomCloud(700, 3, 41);
    const Lbvh bvh = Lbvh::buildFromPoints(pts, r);
    BvhnnKernel binary(pts, bvh, BvhnnConfig{r, false});
    BvhnnKernel wide(pts, bvh, BvhnnConfig{r, true});
    const PointSet queries = test::randomCloud(150, 3, 42);

    const auto bin = binary.run(queries, KernelVariant::Hsu);
    const auto w4 = wide.run(queries, KernelVariant::Hsu);
    EXPECT_TRUE(test::traceWellFormed(w4.trace));

    for (std::size_t q = 0; q < queries.size(); ++q) {
        EXPECT_EQ(bin.results[q].index, w4.results[q].index)
            << "query " << q;
        // Brute force as the independent reference.
        int best = -1;
        float best_d2 = r * r;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            const float d2 = pointDist2(queries[q], pts[i], 3);
            if (d2 <= best_d2 && (best < 0 || d2 < best_d2)) {
                best_d2 = d2;
                best = static_cast<int>(i);
            }
        }
        EXPECT_EQ(w4.results[q].index, best) << "query " << q;
    }
}

TEST(Bvh4Kernel, FewerWiderNodeFetches)
{
    const float r = 0.4f;
    const PointSet pts = test::randomCloud(1000, 3, 43);
    const Lbvh bvh = Lbvh::buildFromPoints(pts, r);
    BvhnnKernel binary(pts, bvh, BvhnnConfig{r, false});
    BvhnnKernel wide(pts, bvh, BvhnnConfig{r, true});
    const PointSet queries = test::randomCloud(128, 3, 44);

    const auto bin = binary.run(queries, KernelVariant::Hsu);
    const auto w4 = wide.run(queries, KernelVariant::Hsu);

    // Count box-mode HSU instructions and bytes per instruction.
    auto box_ops = [](const KernelTrace &kt) {
        std::size_t n = 0;
        for (const auto &w : kt.warps) {
            for (const auto &op : w.ops) {
                if (op.type == OpType::HsuOp &&
                    op.hsuMode == HsuMode::RayBox) {
                    ++n;
                }
            }
        }
        return n;
    };
    EXPECT_LT(box_ops(w4.trace), box_ops(bin.trace));

    // The 4-wide node is a 128B fetch (vs 64B binary nodes).
    for (const auto &w : w4.trace.warps) {
        for (const auto &op : w.ops) {
            if (op.type == OpType::HsuOp &&
                op.hsuMode == HsuMode::RayBox) {
                EXPECT_EQ(op.bytesPerLane, BoxNode4::kBytes);
            }
        }
    }
}

TEST(Bvh4Kernel, BaselineVariantAgreesToo)
{
    const float r = 0.6f;
    const PointSet pts = test::randomCloud(300, 3, 45);
    const Lbvh bvh = Lbvh::buildFromPoints(pts, r);
    BvhnnKernel wide(pts, bvh, BvhnnConfig{r, true});
    const PointSet queries = test::randomCloud(64, 3, 46);
    const auto base = wide.run(queries, KernelVariant::Baseline);
    const auto hsu = wide.run(queries, KernelVariant::Hsu);
    for (std::size_t q = 0; q < queries.size(); ++q)
        EXPECT_EQ(base.results[q].index, hsu.results[q].index);
    EXPECT_EQ(test::countOps(base.trace, OpType::HsuOp), 0u);
}

} // namespace
} // namespace hsu
