#include <cstdio>
#include "search/ggnn.hh"
#include "workloads/datasets.hh"
#include "../tests/test_util.hh"
using namespace hsu;
int main(){
    auto info = datasetInfo(DatasetId::Sift10k);
    auto pts = generatePoints(info);
    for (unsigned efc : {32u, 48u, 64u}) {
        HnswParams hp; hp.efConstruction = efc;
        auto g = HnswGraph::build(pts, info.metric, hp);
        for (unsigned ef : {32u, 48u, 64u, 96u}) {
            auto queries = generateQueries(info, 24);
            GgnnConfig gc; gc.ef = ef;
            GgnnKernel kern(g, gc);
            auto run = kern.run(queries, KernelVariant::Hsu);
            double recall = 0;
            for (size_t q = 0; q < queries.size(); ++q) {
                auto want = test::bruteKnn(pts, queries[q], 10);
                size_t hits=0;
                for (auto&w : want) for (auto&got : run.results[q]) if (got.index==w.index){hits++;break;}
                recall += hits/10.0;
            }
            printf("efc=%u ef=%u recall=%.3f dist_tests/query=%.0f\n", efc, ef, recall/queries.size(), (double)run.distanceTests/queries.size());
        }
    }
}
