/**
 * @file
 * Search-kernel tests: each kernel's functional results must match an
 * independent reference, both trace variants must be well formed, and
 * baseline/HSU variants must compute identical results.
 */

#include <gtest/gtest.h>

#include <map>

#include "../test_util.hh"
#include "search/btree_kernel.hh"
#include "search/bvhnn.hh"
#include "search/flann.hh"
#include "search/ggnn.hh"
#include "search/rtindex.hh"
#include "workloads/datasets.hh"

namespace hsu
{
namespace
{

TEST(BvhnnKernel, MatchesBruteForceRadiusNN)
{
    const float r = 0.5f;
    const PointSet pts = test::randomCloud(800, 3, 21);
    const Lbvh bvh = Lbvh::buildFromPoints(pts, r);
    BvhnnKernel kernel(pts, bvh, BvhnnConfig{r});
    const PointSet queries = test::randomCloud(200, 3, 22);

    const BvhnnRun run = kernel.run(queries, KernelVariant::Hsu);
    EXPECT_TRUE(test::traceWellFormed(run.trace));

    for (std::size_t q = 0; q < queries.size(); ++q) {
        // Brute-force nearest within radius.
        int best = -1;
        float best_d2 = r * r;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            const float d2 = pointDist2(queries[q], pts[i], 3);
            if (d2 <= best_d2 && (best < 0 || d2 < best_d2)) {
                best_d2 = d2;
                best = static_cast<int>(i);
            }
        }
        EXPECT_EQ(run.results[q].index, best) << "query " << q;
        if (best >= 0) {
            EXPECT_FLOAT_EQ(run.results[q].dist2, best_d2);
        }
    }
}

TEST(BvhnnKernel, VariantsAgreeAndDifferInOps)
{
    const PointSet pts = test::randomCloud(400, 3, 23);
    const float r = 0.6f;
    const Lbvh bvh = Lbvh::buildFromPoints(pts, r);
    BvhnnKernel kernel(pts, bvh, BvhnnConfig{r});
    const PointSet queries = test::randomCloud(64, 3, 24);

    const auto base = kernel.run(queries, KernelVariant::Baseline);
    const auto hsu = kernel.run(queries, KernelVariant::Hsu);
    for (std::size_t q = 0; q < queries.size(); ++q)
        EXPECT_EQ(base.results[q].index, hsu.results[q].index);
    EXPECT_EQ(test::countOps(base.trace, OpType::HsuOp), 0u);
    EXPECT_GT(test::countOps(hsu.trace, OpType::HsuOp), 0u);
    EXPECT_GT(test::countOps(base.trace, OpType::Load),
              test::countOps(hsu.trace, OpType::Load));
}

TEST(FlannKernel, MatchesBruteForce1NN)
{
    const PointSet pts = test::randomCloud(1000, 3, 25);
    const KdTree tree = KdTree::build(pts, 8);
    FlannKernel kernel(tree);
    const PointSet queries = test::randomCloud(150, 3, 26);

    const FlannRun run = kernel.run(queries, KernelVariant::Hsu);
    EXPECT_TRUE(test::traceWellFormed(run.trace));
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto want = test::bruteKnn(pts, queries[q], 1);
        EXPECT_FLOAT_EQ(run.results[q].dist2, want[0].dist2)
            << "query " << q;
    }
}

TEST(FlannKernel, VariantsAgree)
{
    const PointSet pts = test::randomCloud(500, 3, 27);
    const KdTree tree = KdTree::build(pts, 16);
    FlannKernel kernel(tree);
    const PointSet queries = test::randomCloud(64, 3, 28);
    const auto base = kernel.run(queries, KernelVariant::Baseline);
    const auto hsu = kernel.run(queries, KernelVariant::Hsu);
    for (std::size_t q = 0; q < queries.size(); ++q) {
        EXPECT_EQ(base.results[q].index, hsu.results[q].index);
        EXPECT_EQ(base.results[q].dist2, hsu.results[q].dist2);
    }
    EXPECT_TRUE(test::traceWellFormed(base.trace));
}

TEST(GgnnKernel, HighRecallOnClusteredData)
{
    const auto &info = datasetInfo(DatasetId::Sift10k);
    PointSet pts = generatePoints(info);
    const HnswGraph graph = HnswGraph::build(pts, info.metric);
    GgnnKernel kernel(graph, GgnnConfig{});
    const PointSet queries = generateQueries(info, 24);

    const GgnnRun run = kernel.run(queries, KernelVariant::Hsu);
    EXPECT_TRUE(test::traceWellFormed(run.trace));
    ASSERT_EQ(run.results.size(), queries.size());

    double recall = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto want = test::bruteKnn(pts, queries[q], 10);
        std::size_t hits = 0;
        for (const auto &w : want) {
            for (const auto &g : run.results[q]) {
                if (g.index == w.index) {
                    ++hits;
                    break;
                }
            }
        }
        recall += static_cast<double>(hits) / 10.0;
    }
    recall /= static_cast<double>(queries.size());
    EXPECT_GE(recall, 0.8);
}

TEST(GgnnKernel, VariantsAgreeExactly)
{
    const PointSet pts = test::randomCloud(600, 24, 29);
    const HnswGraph graph = HnswGraph::build(pts, Metric::Euclidean);
    GgnnKernel kernel(graph, GgnnConfig{});
    const PointSet queries = test::randomCloud(16, 24, 30);
    const auto base = kernel.run(queries, KernelVariant::Baseline);
    const auto hsu = kernel.run(queries, KernelVariant::Hsu);
    ASSERT_EQ(base.results.size(), hsu.results.size());
    for (std::size_t q = 0; q < base.results.size(); ++q) {
        ASSERT_EQ(base.results[q].size(), hsu.results[q].size());
        for (std::size_t i = 0; i < base.results[q].size(); ++i)
            EXPECT_EQ(base.results[q][i].index, hsu.results[q][i].index);
    }
    EXPECT_EQ(base.distanceTests, hsu.distanceTests);
}

TEST(GgnnKernel, AngularUsesAngularInstructions)
{
    const PointSet pts = test::randomCloud(400, 16, 31);
    const HnswGraph graph = HnswGraph::build(pts, Metric::Angular);
    GgnnKernel kernel(graph, GgnnConfig{});
    const PointSet queries = test::randomCloud(8, 16, 32);
    const auto hsu = kernel.run(queries, KernelVariant::Hsu);
    std::size_t angular_ops = 0, euclid_ops = 0;
    for (const auto &w : hsu.trace.warps) {
        for (const auto &op : w.ops) {
            if (op.type != OpType::HsuOp)
                continue;
            if (op.hsuMode == HsuMode::Angular)
                ++angular_ops;
            if (op.hsuMode == HsuMode::Euclid)
                ++euclid_ops;
        }
    }
    EXPECT_GT(angular_ops, 0u);
    EXPECT_EQ(euclid_ops, 0u);
}

TEST(BtreeKernel, LookupsMatchTree)
{
    Rng rng(33);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (std::uint32_t i = 0; i < 30000; ++i) {
        pairs.emplace_back(
            static_cast<std::uint32_t>(rng.nextBounded(1u << 24)), i);
    }
    const BTree tree = BTree::build(pairs, 256);
    BtreeKernel kernel(tree);

    std::vector<std::uint32_t> probes;
    for (int i = 0; i < 500; ++i) {
        probes.push_back(
            static_cast<std::uint32_t>(rng.nextBounded(1u << 24)));
    }
    const auto base = kernel.run(probes, KernelVariant::Baseline);
    const auto hsu = kernel.run(probes, KernelVariant::Hsu);
    EXPECT_TRUE(test::traceWellFormed(base.trace));
    EXPECT_TRUE(test::traceWellFormed(hsu.trace));
    for (std::size_t i = 0; i < probes.size(); ++i) {
        EXPECT_EQ(base.results[i], tree.lookup(probes[i])) << i;
        EXPECT_EQ(hsu.results[i], base.results[i]) << i;
    }
    // HSU replaces the internal-node scans with KEY_COMPARE ops.
    EXPECT_GT(test::countOps(hsu.trace, OpType::HsuOp), 0u);
    EXPECT_EQ(test::countOps(base.trace, OpType::HsuOp), 0u);
}

TEST(RtindexKernel, BothVariantsFindExactlyPresentKeys)
{
    Rng rng(34);
    std::vector<std::uint32_t> keys;
    std::uint32_t cur = 100;
    for (int i = 0; i < 5000; ++i)
        keys.push_back(cur += 1 + rng.nextBounded(5));
    const std::uint32_t max_key = cur;
    RtindexKernel index(keys);
    EXPECT_TRUE(index.bvh().validate());

    std::vector<std::uint32_t> probes;
    for (int i = 0; i < 400; ++i)
        probes.push_back(
            static_cast<std::uint32_t>(rng.nextBounded(max_key + 50)));

    const auto tri = index.run(probes, KernelVariant::Baseline);
    const auto key = index.run(probes, KernelVariant::Hsu);
    EXPECT_EQ(tri.leafBytesPerKey, 36u);
    EXPECT_EQ(key.leafBytesPerKey, 4u);
    for (std::size_t i = 0; i < probes.size(); ++i) {
        const bool present = std::binary_search(keys.begin(), keys.end(),
                                                probes[i]);
        EXPECT_EQ(tri.found[i], present) << "probe " << i;
        EXPECT_EQ(key.found[i], present) << "probe " << i;
    }
}

} // namespace
} // namespace hsu
