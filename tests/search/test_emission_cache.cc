/**
 * @file
 * Emit-once / lower-many pipeline tests: the shared semantic-trace
 * cache must hand every requester the same artifact, the cached
 * artifact must lower bit-identically to a fresh emission, SemLower
 * executor jobs must reproduce the two-point API's cycle counts, and
 * the grid-based pickRadius must match the brute-force scan it
 * replaced exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "search/runner.hh"
#include "sim/trace_stats.hh"
#include "structures/pointset.hh"

namespace hsu
{
namespace
{

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.finalize();
    return cfg;
}

RunnerOptions
tinyOptions()
{
    RunnerOptions o;
    o.ggnnQueries = 32;
    o.pointQueries = 256;
    o.keyQueries = 512;
    return o;
}

TEST(EmissionCache, SharedAcrossConcurrentRequesters)
{
    // Every thread asking for the same (algo, dataset, opts) must get
    // a pointer to the SAME semantic trace — emission ran once, and
    // the workers of a sweep share the artifact instead of copying it.
    constexpr unsigned kThreads = 8;
    std::vector<std::shared_ptr<const SemKernelTrace>> got(kThreads);
    {
        std::vector<std::thread> threads;
        for (unsigned i = 0; i < kThreads; ++i) {
            threads.emplace_back([&got, i] {
                got[i] = emitSemanticShared(Algo::Btree,
                                            DatasetId::BTree10k,
                                            tinyOptions());
            });
        }
        for (auto &t : threads)
            t.join();
    }
    for (unsigned i = 1; i < kThreads; ++i)
        EXPECT_EQ(got[0].get(), got[i].get());

    // A different key is a different artifact.
    RunnerOptions other = tinyOptions();
    other.keyQueries = 256;
    const auto distinct =
        emitSemanticShared(Algo::Btree, DatasetId::BTree10k, other);
    EXPECT_NE(got[0].get(), distinct.get());
}

TEST(EmissionCache, CachedTraceLowersIdenticallyToFreshEmission)
{
    // Emission is a pure function of its key, so the cached semantic
    // trace must lower to the same bits as an uncached emitSemantic()
    // call — under both lowerings.
    const RunnerOptions opts = tinyOptions();
    const DatapathConfig dp = smallGpu().datapath;
    const std::pair<Algo, DatasetId> workloads[] = {
        {Algo::Ggnn, DatasetId::Sift10k},
        {Algo::Bvhnn, DatasetId::Random10k},
    };
    for (const auto &[algo, id] : workloads) {
        const auto shared = emitSemanticShared(algo, id, opts);
        const SemKernelTrace fresh = emitSemantic(algo, id, opts);
        for (const Lowering &low :
             {Lowering::baseline(dp), Lowering::hsu(dp)}) {
            EXPECT_EQ(traceFingerprint(lowerTrace(*shared, low)),
                      traceFingerprint(lowerTrace(fresh, low)));
        }
    }
}

TEST(EmissionCache, SemLowerJobMatchesTwoPointApi)
{
    // A Kind::SemLower executor job over the shared emission must be
    // cycle-for-cycle identical to the runBaseOnly/runHsuOnly path.
    const RunnerOptions opts = tinyOptions();
    const DatasetId id = DatasetId::BTree10k;

    GpuConfig hsu_gpu = smallGpu();
    hsu_gpu.rtUnitEnabled = true;
    GpuConfig base_gpu = smallGpu();
    base_gpu.rtUnitEnabled = false;

    std::vector<SimJob> jobs;
    for (const bool hsu_side : {false, true}) {
        SimJob job;
        job.kind = SimJob::Kind::SemLower;
        job.gpu = hsu_side ? hsu_gpu : base_gpu;
        job.sem = emitSemanticShared(Algo::Btree, id, opts);
        job.lowering = hsu_side ? Lowering::hsu(hsu_gpu.datapath)
                                : Lowering::baseline(base_gpu.datapath);
        jobs.push_back(std::move(job));
    }
    const auto res = runJobsParallel(std::move(jobs), 2);

    StatGroup base_stats, hsu_stats;
    const RunResult base =
        runBaseOnly(Algo::Btree, id, smallGpu(), opts, base_stats);
    const RunResult hsu =
        runHsuOnly(Algo::Btree, id, smallGpu(), opts, hsu_stats);
    EXPECT_EQ(res[0].run.cycles, base.cycles);
    EXPECT_EQ(res[1].run.cycles, hsu.cycles);

    // The worker-side trace analysis is populated for SemLower jobs.
    EXPECT_EQ(res[0].traceStats.semanticOffloadFraction(), 0.0);
    EXPECT_GT(res[1].traceStats.semanticOffloadFraction(), 0.0);
}

/** The original O(samples x N) radius pick, kept as the reference the
 *  grid-accelerated pickRadius must match bit-for-bit. */
float
bruteForceRadius(const PointSet &points, std::uint64_t seed)
{
    Rng rng(seed);
    const std::size_t samples =
        std::min<std::size_t>(64, points.size());
    std::vector<float> nn;
    nn.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s) {
        const std::size_t i = rng.nextBounded(points.size());
        float best = std::numeric_limits<float>::infinity();
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (j == i)
                continue;
            best = std::min(best, pointDist2(points[i], points[j], 3));
        }
        nn.push_back(std::sqrt(best));
    }
    std::nth_element(nn.begin(), nn.begin() + nn.size() / 2, nn.end());
    return 2.0f * nn[nn.size() / 2];
}

TEST(PickRadius, MatchesBruteForceOnSeedDataset)
{
    const PointSet points =
        generatePoints(datasetInfo(DatasetId::Random10k));
    EXPECT_EQ(pickRadius(points), bruteForceRadius(points, 42));
}

TEST(PickRadius, MatchesBruteForceOnAdversarialSets)
{
    // Tiny sets, duplicate points, collinear (degenerate-extent) sets:
    // the grid's ring-scan stopping rule must stay exact on all of
    // them.
    Rng rng(7);
    auto random_point = [&rng]() {
        return std::array<float, 3>{
            static_cast<float>(rng.nextBounded(1000)) * 0.01f,
            static_cast<float>(rng.nextBounded(1000)) * 0.01f,
            static_cast<float>(rng.nextBounded(1000)) * 0.01f};
    };

    std::vector<PointSet> sets;

    PointSet tiny(3); // below the 64-sample count
    for (int i = 0; i < 5; ++i)
        tiny.add(random_point().data());
    sets.push_back(std::move(tiny));

    PointSet dupes(3); // zero nearest-neighbor distances
    for (int i = 0; i < 100; ++i) {
        const auto p = random_point();
        dupes.add(p.data());
        if (i % 3 == 0)
            dupes.add(p.data());
    }
    sets.push_back(std::move(dupes));

    PointSet line(3); // two axes have zero extent
    for (int i = 0; i < 200; ++i) {
        const float x = static_cast<float>(rng.nextBounded(10000));
        const float p[3] = {x, 1.0f, -2.0f};
        line.add(p);
    }
    sets.push_back(std::move(line));

    PointSet clustered(3); // dense clumps + far outlier
    for (int i = 0; i < 300; ++i) {
        const auto p = random_point();
        const float q[3] = {p[0] * 0.01f, p[1] * 0.01f, p[2] * 0.01f};
        clustered.add(q);
    }
    {
        const float outlier[3] = {1e6f, 1e6f, 1e6f};
        clustered.add(outlier);
    }
    sets.push_back(std::move(clustered));

    for (std::size_t s = 0; s < sets.size(); ++s) {
        SCOPED_TRACE("set " + std::to_string(s));
        EXPECT_EQ(pickRadius(sets[s]), bruteForceRadius(sets[s], 42));
    }
}

} // namespace
} // namespace hsu
