/**
 * @file
 * End-to-end experiment-runner tests: every algorithm produces a
 * positive, finite result on a small configuration; the key paper
 * shapes hold on the fast workloads.
 */

#include <gtest/gtest.h>

#include "search/runner.hh"

namespace hsu
{
namespace
{

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.finalize();
    return cfg;
}

RunnerOptions
tinyOptions()
{
    RunnerOptions o;
    o.ggnnQueries = 32;
    o.pointQueries = 256;
    o.keyQueries = 512;
    return o;
}

TEST(Runner, DatasetsForAlgoPartition)
{
    EXPECT_EQ(datasetsForAlgo(Algo::Ggnn).size(), 9u);
    EXPECT_EQ(datasetsForAlgo(Algo::Flann).size(), 5u);
    EXPECT_EQ(datasetsForAlgo(Algo::Bvhnn).size(), 5u);
    EXPECT_EQ(datasetsForAlgo(Algo::Btree).size(), 2u);
}

TEST(Runner, LabelsCarryPrefixes)
{
    const auto &bun = datasetInfo(DatasetId::Bunny);
    EXPECT_EQ(workloadLabel(Algo::Flann, bun), "F-BUN");
    EXPECT_EQ(workloadLabel(Algo::Bvhnn, bun), "B-BUN");
    EXPECT_EQ(workloadLabel(Algo::Ggnn, datasetInfo(DatasetId::Glove)),
              "GLV");
}

TEST(Runner, BtreeWorkloadEndToEnd)
{
    const auto r = runWorkload(Algo::Btree, DatasetId::BTree10k,
                               smallGpu(), tinyOptions());
    EXPECT_GT(r.base.cycles, 0u);
    EXPECT_GT(r.hsu.cycles, 0u);
    EXPECT_GT(r.hsu.hsuCompleted, 0.0);
    EXPECT_EQ(r.base.hsuCompleted, 0.0);
    EXPECT_GT(r.base.offloadableFraction, 0.0);
    EXPECT_LT(r.base.offloadableFraction, 1.0);
}

TEST(Runner, BvhnnFasterWithHsu)
{
    // The headline effect on the strongest workload. Needs enough
    // warps for the RT unit's latency to be hidden, so this test uses
    // more queries than the other runner tests.
    RunnerOptions opts = tinyOptions();
    opts.pointQueries = 1024;
    const auto r = runWorkload(Algo::Bvhnn, DatasetId::Random10k,
                               smallGpu(), opts);
    EXPECT_GT(r.speedup(), 1.05);
    // And the HSU cuts L1 accesses (Fig 12's BVH-NN effect).
    EXPECT_LT(r.hsu.l1Accesses, 0.8 * r.base.l1Accesses);
}

TEST(Runner, OptionsScaleWithDimension)
{
    const auto big = optionsFor(datasetInfo(DatasetId::Mnist));
    const auto small = optionsFor(datasetInfo(DatasetId::Sift10k));
    EXPECT_LT(big.ggnnQueries, small.ggnnQueries);
    const auto quick = optionsFor(datasetInfo(DatasetId::Sift10k), 0.25);
    EXPECT_LT(quick.pointQueries, small.pointQueries);
}

TEST(Runner, WarpBufferOneIsWorseThanEight)
{
    // Fig 11's key shape: a single-entry warp buffer forfeits all
    // memory-level parallelism.
    const RunnerOptions opts = tinyOptions();
    GpuConfig one = smallGpu();
    one.warpBufferSize = 1;
    GpuConfig eight = smallGpu();

    StatGroup s1, s8;
    const RunResult r1 =
        runHsuOnly(Algo::Bvhnn, DatasetId::Random10k, one, opts, s1);
    const RunResult r8 =
        runHsuOnly(Algo::Bvhnn, DatasetId::Random10k, eight, opts, s8);
    EXPECT_GT(r1.cycles, r8.cycles);
}

} // namespace
} // namespace hsu
