/**
 * @file
 * Fixed-seed miniature workloads pinned by the golden-trace regression
 * test. The trace fingerprints recorded in test_golden_trace.cc were
 * captured from the pre-IR emission paths (kernels emitting baseline /
 * HSU instruction sequences inline); the semantic-IR + lowering path
 * must reproduce them bit-identically, so these builders must never
 * change. Add new workloads instead of editing existing ones.
 */

#ifndef HSU_TESTS_SEARCH_GOLDEN_WORKLOADS_HH
#define HSU_TESTS_SEARCH_GOLDEN_WORKLOADS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "../test_util.hh"
#include "common/rng.hh"
#include "search/btree_kernel.hh"
#include "search/bvhnn.hh"
#include "search/flann.hh"
#include "search/ggnn.hh"
#include "search/rtindex.hh"
#include "structures/btree.hh"
#include "structures/graph.hh"
#include "structures/kdtree.hh"
#include "structures/lbvh.hh"

namespace hsu::golden
{

struct GgnnWorkload
{
    PointSet points;
    PointSet queries;
};

/** GGNN, Euclidean metric: 600 x 24-d points, 16 queries. */
inline GgnnWorkload
ggnnEuclid()
{
    return {test::randomCloud(600, 24, 29), test::randomCloud(16, 24, 30)};
}

/** GGNN, angular metric: 400 x 16-d points, 8 queries. */
inline GgnnWorkload
ggnnAngular()
{
    return {test::randomCloud(400, 16, 31), test::randomCloud(8, 16, 32)};
}

struct PointWorkload
{
    PointSet points;
    PointSet queries;
    float radius = 0.6f;
};

/** FLANN / BVH-NN: 500 3-d points, 64 queries. */
inline PointWorkload
pointCloud()
{
    return {test::randomCloud(500, 3, 27), test::randomCloud(64, 3, 28),
            0.6f};
}

struct KeyWorkload
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    std::vector<std::uint32_t> probes;
};

/** B+tree: 8000 key/value pairs, 200 probes. */
inline KeyWorkload
btreeKeys()
{
    KeyWorkload w;
    Rng rng(33);
    for (std::uint32_t i = 0; i < 8000; ++i) {
        w.pairs.emplace_back(
            static_cast<std::uint32_t>(rng.nextBounded(1u << 24)), i);
    }
    for (int i = 0; i < 200; ++i) {
        w.probes.push_back(
            static_cast<std::uint32_t>(rng.nextBounded(1u << 24)));
    }
    return w;
}

struct RtindexWorkload
{
    std::vector<std::uint32_t> keys;
    std::vector<std::uint32_t> probes;
};

/** RTIndeX: 2000 gapped keys, 200 probes. */
inline RtindexWorkload
rtindexKeys()
{
    RtindexWorkload w;
    Rng rng(34);
    std::uint32_t cur = 100;
    for (int i = 0; i < 2000; ++i)
        w.keys.push_back(cur += 1 + rng.nextBounded(5));
    for (int i = 0; i < 200; ++i) {
        w.probes.push_back(
            static_cast<std::uint32_t>(rng.nextBounded(cur + 50)));
    }
    return w;
}

} // namespace hsu::golden

#endif // HSU_TESTS_SEARCH_GOLDEN_WORKLOADS_HH
