/**
 * @file
 * Golden-trace regression: the semantic-IR + lowering path must
 * reproduce the pre-refactor per-variant kernel emissions
 * bit-identically. The fingerprints below were captured from the seed
 * code (kernels emitting baseline/HSU instruction sequences inline)
 * over the fixed workloads in golden_workloads.hh; any change to
 * emission order, masks, token assignment, or address pools fails
 * here. If a lowering change is INTENTIONAL, re-capture the values
 * (build the old probe or print the new fingerprints) and say so in
 * the commit message.
 */

#include <gtest/gtest.h>

#include "golden_workloads.hh"
#include "sim/trace_stats.hh"

namespace hsu
{
namespace
{

TEST(GoldenTrace, GgnnEuclid)
{
    const auto w = golden::ggnnEuclid();
    const HnswGraph g = HnswGraph::build(w.points, Metric::Euclidean);
    const GgnnKernel k(g, GgnnConfig{});
    EXPECT_EQ(
        traceFingerprint(k.run(w.queries, KernelVariant::Baseline).trace),
        0x1c4be218d7cda5ebull);
    EXPECT_EQ(
        traceFingerprint(k.run(w.queries, KernelVariant::Hsu).trace),
        0x1fb71806993628f7ull);
}

TEST(GoldenTrace, GgnnAngular)
{
    const auto w = golden::ggnnAngular();
    const HnswGraph g = HnswGraph::build(w.points, Metric::Angular);
    const GgnnKernel k(g, GgnnConfig{});
    EXPECT_EQ(
        traceFingerprint(k.run(w.queries, KernelVariant::Baseline).trace),
        0x6beaffe90e69beb2ull);
    EXPECT_EQ(
        traceFingerprint(k.run(w.queries, KernelVariant::Hsu).trace),
        0xe63b6381ee506f8dull);
}

TEST(GoldenTrace, Flann)
{
    const auto w = golden::pointCloud();
    const KdTree tree = KdTree::build(w.points, 16);
    const FlannKernel k(tree);
    EXPECT_EQ(
        traceFingerprint(k.run(w.queries, KernelVariant::Baseline).trace),
        0x7131b4f0681ce5a5ull);
    EXPECT_EQ(
        traceFingerprint(k.run(w.queries, KernelVariant::Hsu).trace),
        0x42f202036ccad617ull);
}

TEST(GoldenTrace, Bvhnn)
{
    const auto w = golden::pointCloud();
    const Lbvh bvh = Lbvh::buildFromPoints(w.points, w.radius);
    const BvhnnKernel k(w.points, bvh, BvhnnConfig{w.radius});
    EXPECT_EQ(
        traceFingerprint(k.run(w.queries, KernelVariant::Baseline).trace),
        0x9eecd778343dd9d6ull);
    EXPECT_EQ(
        traceFingerprint(k.run(w.queries, KernelVariant::Hsu).trace),
        0xe6a7849816cbf1daull);
}

TEST(GoldenTrace, Bvhnn4Wide)
{
    const auto w = golden::pointCloud();
    const Lbvh bvh = Lbvh::buildFromPoints(w.points, w.radius);
    BvhnnConfig cfg{w.radius};
    cfg.useBvh4 = true;
    const BvhnnKernel k(w.points, bvh, cfg);
    EXPECT_EQ(
        traceFingerprint(k.run(w.queries, KernelVariant::Baseline).trace),
        0x791edbb4f38453a4ull);
    EXPECT_EQ(
        traceFingerprint(k.run(w.queries, KernelVariant::Hsu).trace),
        0xce9c813062751118ull);
}

TEST(GoldenTrace, Btree)
{
    auto w = golden::btreeKeys();
    const BTree tree = BTree::build(std::move(w.pairs), 256);
    const BtreeKernel k(tree);
    EXPECT_EQ(
        traceFingerprint(k.run(w.probes, KernelVariant::Baseline).trace),
        0x8536067922c74932ull);
    EXPECT_EQ(
        traceFingerprint(k.run(w.probes, KernelVariant::Hsu).trace),
        0x0def584e4e6ba08eull);
}

TEST(GoldenTrace, Rtindex)
{
    const auto w = golden::rtindexKeys();
    const RtindexKernel k(w.keys);
    EXPECT_EQ(
        traceFingerprint(k.run(w.probes, KernelVariant::Baseline).trace),
        0x261175e7a477f705ull);
    EXPECT_EQ(
        traceFingerprint(k.run(w.probes, KernelVariant::Hsu).trace),
        0xb105970b27344ae2ull);
}

// The PartialOffload lowering's endpoints are the two-point API: the
// explicit emit+lower path at fraction 0/1 must equal run(variant).
TEST(GoldenTrace, PartialOffloadEndpoints)
{
    const auto w = golden::pointCloud();
    const Lbvh bvh = Lbvh::buildFromPoints(w.points, w.radius);
    const BvhnnKernel k(w.points, bvh, BvhnnConfig{w.radius});
    const SemKernelTrace sem = k.emit(w.queries).sem;
    EXPECT_EQ(traceFingerprint(lowerTrace(sem, Lowering::partial(0.0))),
              0x9eecd778343dd9d6ull);
    EXPECT_EQ(traceFingerprint(lowerTrace(sem, Lowering::partial(1.0))),
              0xe6a7849816cbf1daull);
}

} // namespace
} // namespace hsu
