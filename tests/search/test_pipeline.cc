/**
 * @file
 * RayPipeline (Fig 3 programming model) tests: RG/IS/AH/CH/miss hooks,
 * closest-hit correctness against brute force, and early termination.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "search/pipeline.hh"

namespace hsu
{
namespace
{

struct Scene
{
    std::vector<Triangle> tris;
    Lbvh binary;
    Bvh4 bvh;

    explicit Scene(std::uint64_t seed, unsigned n = 120)
    {
        Rng rng(seed);
        for (std::uint32_t i = 0; i < n; ++i) {
            const Vec3 base{rng.uniform(-4, 4), rng.uniform(-4, 4),
                            rng.uniform(2, 10)};
            tris.push_back({base, base + Vec3{0.7f, 0, 0.1f},
                            base + Vec3{0, 0.7f, 0.1f}, i});
        }
        binary = Lbvh::buildFromTriangles(tris);
        bvh = Bvh4::fromBinary(binary);
    }
};

TriHit
bruteClosest(const Ray &ray, const std::vector<Triangle> &tris)
{
    const PreparedRay pr(ray);
    TriHit best;
    float best_t = ray.tmax;
    for (const auto &tri : tris) {
        const TriHit h = rayTriangleTest(pr, tri);
        if (h.hit && h.t() < best_t) {
            best = h;
            best_t = h.t();
        }
    }
    return best;
}

TEST(RayPipeline, ClosestHitMatchesBruteForce)
{
    const Scene scene(71);
    RayPipeline pipe(scene.bvh, scene.tris);
    Rng rng(72);
    for (int i = 0; i < 200; ++i) {
        Ray ray;
        ray.origin = {rng.uniform(-2, 2), rng.uniform(-2, 2), -1};
        ray.dir = normalize(Vec3{rng.uniform(-0.4f, 0.4f),
                                 rng.uniform(-0.4f, 0.4f), 1});
        const TriHit got = pipe.traceRay(ray);
        const TriHit want = bruteClosest(ray, scene.tris);
        ASSERT_EQ(got.hit, want.hit) << "ray " << i;
        if (got.hit) {
            EXPECT_EQ(got.triId, want.triId);
            EXPECT_NEAR(got.t(), want.t(), 1e-3f);
        }
    }
}

TEST(RayPipeline, ProgramsFireInOrder)
{
    const Scene scene(73);
    unsigned ch = 0, miss = 0, ah = 0;
    RayPipeline pipe(scene.bvh, scene.tris);
    pipe.onRayGen([](unsigned i) {
            Ray r;
            r.origin = {static_cast<float>(i % 8) - 4.0f,
                        static_cast<float>(i / 8) - 4.0f, -1};
            r.dir = {0, 0, 1};
            return r;
        })
        .onAnyHit([&](unsigned, const TriHit &) {
            ++ah;
            return AnyHitDecision::Accept;
        })
        .onClosestHit([&](unsigned, const TriHit &h) {
            ++ch;
            EXPECT_TRUE(h.hit);
        })
        .onMiss([&](unsigned) { ++miss; });

    const PipelineStats stats = pipe.trace(64);
    EXPECT_EQ(stats.rays, 64u);
    EXPECT_EQ(stats.hits, ch);
    EXPECT_EQ(stats.misses, miss);
    EXPECT_EQ(ch + miss, 64u);
    EXPECT_GE(ah, ch);
    EXPECT_GT(stats.boxNodesVisited, 0u);
}

TEST(RayPipeline, AnyHitIgnoreFiltersPrimitives)
{
    const Scene scene(74);
    RayPipeline pipe(scene.bvh, scene.tris);
    // Ignore every even triangle id: the closest hit must be odd.
    pipe.onAnyHit([](unsigned, const TriHit &h) {
        return h.triId % 2 == 0 ? AnyHitDecision::Ignore
                                : AnyHitDecision::Accept;
    });
    Rng rng(75);
    for (int i = 0; i < 100; ++i) {
        Ray ray;
        ray.origin = {rng.uniform(-2, 2), rng.uniform(-2, 2), -1};
        ray.dir = {0, 0, 1};
        const TriHit h = pipe.traceRay(ray);
        if (h.hit) {
            EXPECT_EQ(h.triId % 2, 1u);
        }
    }
}

TEST(RayPipeline, TerminateActsLikeShadowRay)
{
    const Scene scene(76);
    unsigned tests_terminate = 0, tests_full = 0;
    RayPipeline pipe(scene.bvh, scene.tris);
    Ray ray;
    ray.origin = {0, 0, -1};
    ray.dir = {0, 0, 1};

    PipelineStats s1;
    pipe.onAnyHit([](unsigned, const TriHit &) {
        return AnyHitDecision::Terminate;
    });
    pipe.traceRay(ray, 0, &s1);
    tests_terminate = static_cast<unsigned>(s1.primitiveTests);

    PipelineStats s2;
    pipe.onAnyHit(nullptr);
    pipe.traceRay(ray, 0, &s2);
    tests_full = static_cast<unsigned>(s2.primitiveTests);
    EXPECT_LE(tests_terminate, tests_full);
}

TEST(RayPipeline, CustomIntersectionProgram)
{
    // Sphere primitives via the IS program: triangles only provide
    // the BVH footprint; hits come from ray-sphere math.
    const Scene scene(77);
    RayPipeline pipe(scene.bvh, scene.tris);
    pipe.onIntersection([&](const PreparedRay &pr, std::uint32_t prim) {
        // Sphere centered at the triangle's v0 with radius 0.4.
        const Vec3 c = scene.tris[prim].v0;
        const float radius = 0.4f;
        TriHit h;
        h.triId = prim;
        const Vec3 oc = pr.ray.origin - c;
        const float b = dot(oc, pr.ray.dir);
        const float disc = b * b - (length2(oc) - radius * radius);
        if (disc < 0)
            return h;
        const float t = -b - std::sqrt(disc);
        if (t < pr.ray.tmin || t > pr.ray.tmax)
            return h;
        h.hit = true;
        h.tNum = t;
        h.tDenom = 1.0f;
        return h;
    });
    Ray ray;
    ray.origin = {0, 0, -5};
    ray.dir = {0, 0, 1};
    const TriHit h = pipe.traceRay(ray);
    if (h.hit) {
        // Hit distance must place the point on the sphere's surface.
        const Vec3 p = ray.at(h.t());
        const Vec3 c = scene.tris[h.triId].v0;
        EXPECT_NEAR(length(p - c), 0.4f, 1e-3f);
    }
}

TEST(RayPipeline, TraceWithoutRayGenPanics)
{
    const Scene scene(78);
    RayPipeline pipe(scene.bvh, scene.tris);
    EXPECT_DEATH(pipe.trace(1), "ray-generation");
}

} // namespace
} // namespace hsu
