/**
 * @file
 * Area/power model and roofline tests: the paper's headline ratios must
 * hold (HSU area ~ +37%, HSU additions cost a few mW per ray mode,
 * euclid within a few mW of ray-box, angular below euclid).
 */

#include <gtest/gtest.h>

#include "analysis/datapath_cost.hh"
#include "analysis/roofline.hh"

namespace hsu
{
namespace
{

TEST(AreaModel, HsuAddsRoughlyPaperDelta)
{
    const double base = totalArea(baselineInventory());
    const double hsu = totalArea(hsuInventory());
    const double ratio = hsu / base;
    // Paper: +37%. Allow a modeling band.
    EXPECT_GT(ratio, 1.25);
    EXPECT_LT(ratio, 1.50);
}

TEST(AreaModel, AddersFollowSectionIVC)
{
    // "two additional adders in stage 3, and one in stages 5, 8, 9".
    const auto base = baselineInventory();
    const auto hsu = hsuInventory();
    const auto idx = static_cast<unsigned>(FuClass::FpAdd);
    EXPECT_EQ(hsu.stages[2].count[idx] - base.stages[2].count[idx], 2.0);
    EXPECT_EQ(hsu.stages[4].count[idx] - base.stages[4].count[idx], 1.0);
    EXPECT_EQ(hsu.stages[7].count[idx] - base.stages[7].count[idx], 1.0);
    EXPECT_EQ(hsu.stages[8].count[idx] - base.stages[8].count[idx], 1.0);
    EXPECT_EQ(hsu.total(FuClass::FpAdd) - base.total(FuClass::FpAdd),
              5.0);
}

TEST(AreaModel, MultipliersAndComparatorsUnchanged)
{
    // Key-compare reuses the stage-3 comparator bank; distances reuse
    // the multipliers (Fig 6).
    const auto base = baselineInventory();
    const auto hsu = hsuInventory();
    EXPECT_EQ(base.total(FuClass::FpMul), hsu.total(FuClass::FpMul));
    EXPECT_EQ(base.total(FuClass::FpCmp), hsu.total(FuClass::FpCmp));
}

TEST(AreaModel, WiderDatapathCostsMore)
{
    DatapathConfig wide;
    wide.euclidWidth = 32;
    EXPECT_GT(totalArea(hsuInventory(wide)),
              totalArea(hsuInventory(DatapathConfig{})));
}

TEST(PowerModel, PaperShapesHold)
{
    const auto base = baselineInventory();
    const auto hsu = hsuInventory();
    const DatapathConfig dp;

    const double base_box = modePower(base, HsuMode::RayBox, dp);
    const double base_tri = modePower(base, HsuMode::RayTri, dp);
    const double hsu_box = modePower(hsu, HsuMode::RayBox, dp, &base);
    const double hsu_tri = modePower(hsu, HsuMode::RayTri, dp, &base);
    const double euclid = modePower(hsu, HsuMode::Euclid, dp, &base);
    const double angular = modePower(hsu, HsuMode::Angular, dp, &base);
    const double keycmp = modePower(hsu, HsuMode::KeyCompare, dp, &base);

    // HSU adds a small tax to the baseline ray modes (paper: 10/8 mW).
    EXPECT_GT(hsu_box, base_box);
    EXPECT_LT(hsu_box - base_box, 15.0);
    EXPECT_GT(hsu_tri, base_tri);
    EXPECT_LT(hsu_tri - base_tri, 15.0);

    // Euclid lands within ~10 mW of baseline ray-box (paper: +5).
    EXPECT_LT(std::abs(euclid - base_box), 12.0);
    // Angular below euclid; key-compare the cheapest by far.
    EXPECT_LT(angular, euclid);
    EXPECT_LT(keycmp, angular);
    // Everything in a plausible tens-of-mW band.
    for (const double p : {base_box, base_tri, hsu_box, hsu_tri, euclid,
                           angular, keycmp}) {
        EXPECT_GT(p, 10.0);
        EXPECT_LT(p, 150.0);
    }
}

TEST(Roofline, BoundsAndUtilization)
{
    RunResult r;
    r.cycles = 1000;
    r.hsuCompleted = 400;
    r.l2LinesAccessed = 2000;
    const RooflinePoint p = rooflinePoint("x", r, 1);
    EXPECT_DOUBLE_EQ(p.performance, 0.4);
    EXPECT_DOUBLE_EQ(p.intensity, 0.2);
    EXPECT_DOUBLE_EQ(p.bound(), 0.2); // memory-bound region
    EXPECT_DOUBLE_EQ(p.utilization(), 2.0); // above-roof impossible IRL

    r.l2LinesAccessed = 100; // intensity 4 -> compute-bound
    const RooflinePoint q = rooflinePoint("y", r, 1);
    EXPECT_DOUBLE_EQ(q.bound(), 1.0);
    EXPECT_DOUBLE_EQ(q.utilization(), 0.4);
}

TEST(Roofline, NormalizesPerUnit)
{
    RunResult r;
    r.cycles = 1000;
    r.hsuCompleted = 800;
    r.l2LinesAccessed = 100;
    EXPECT_DOUBLE_EQ(rooflinePoint("x", r, 4).performance, 0.2);
}

} // namespace
} // namespace hsu
