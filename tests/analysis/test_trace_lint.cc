/**
 * @file
 * trace_lint regression corpus: a valid semantic trace is corrupted one
 * invariant at a time and each corruption must trigger exactly its rule
 * ID — no more, no less — while the golden-trace workloads (the same
 * fixed-seed emissions the fingerprint test pins) lint clean under all
 * three lowerings.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "../search/golden_workloads.hh"
#include "analysis/trace_lint.hh"
#include "sim/lower.hh"

namespace hsu
{
namespace
{

/** A small semantic warp exercising every op kind, valid per the full
 *  rule catalog (the corruption tests each break one invariant). */
SemKernelTrace
validSem()
{
    SemKernelTrace sem;
    sem.warps.emplace_back();
    SemBuilder sb(sem.warps.back());
    std::uint64_t addrs[kWarpSize];
    for (unsigned i = 0; i < kWarpSize; ++i)
        addrs[i] = 0x1000 + 64ull * i;

    const VirtToken q = sb.loadPattern(0x8000, 4, 4);
    sb.alu(3, kFullMask, {q});
    sb.distanceWarpCoop(Metric::Euclidean, 64, addrs, 8,
                        ggnnDistanceShape(Metric::Euclidean, 64));
    const VirtToken d =
        sb.distanceLanes(3, addrs, kFullMask, bvhnnLeafShape());
    sb.alu(2, kFullMask, {d});
    sb.keyCompareScan(0x9000, 255);
    const VirtToken b = sb.boxTest(addrs, kFullMask, bvhBoxShape());
    sb.alu(1, kFullMask, {b});
    const VirtToken t = sb.triTest(addrs, 48, kFullMask);
    sb.alu(1, kFullMask, {t});
    sb.storePattern(0xa000, 8, 8);
    return sem;
}

/** The corruption fired its rule and nothing else (at error level). */
void
expectOnly(const LintReport &report, const char *rule_id)
{
    EXPECT_GT(report.countRule(rule_id), 0u)
        << "expected " << rule_id << ":\n"
        << report.str();
    EXPECT_EQ(report.errorCount() + report.warningCount(),
              report.countRule(rule_id))
        << "extra findings beyond " << rule_id << ":\n"
        << report.str();
}

TEST(TraceLint, ValidTraceIsClean)
{
    const SemKernelTrace sem = validSem();
    const LintReport report = lintWorkload(sem);
    EXPECT_TRUE(report.clean()) << report.str();
}

// --- Corrupted corpus: semantic rules --------------------------------

TEST(TraceLint, UnresolvedVirtTokenIsIr001)
{
    // An op consuming a token whose producer comes later.
    SemKernelTrace sem;
    sem.warps.emplace_back();
    SemBuilder sb(sem.warps.back());
    const VirtToken a = sb.loadPattern(0x8000, 4, 4); // token 0
    sb.alu(1, kFullMask, {1});                        // token 1: not yet
    const VirtToken b = sb.loadPattern(0x8100, 4, 4); // token 1
    sb.alu(1, kFullMask, {a, b});
    expectOnly(lintSemTrace(sem), "IR001");
}

TEST(TraceLint, RedefinedVirtTokenIsIr002)
{
    // Two producers forced onto one token. The orphaned token (1) is
    // never consumed, so IR001 stays quiet and only the SSA violation
    // fires.
    SemKernelTrace sem;
    sem.warps.emplace_back();
    SemBuilder sb(sem.warps.back());
    const VirtToken a = sb.loadPattern(0x8000, 4, 4); // token 0
    sb.loadPattern(0x8100, 4, 4);                     // token 1
    sb.alu(1, kFullMask, {a});
    sem.warps[0].ops[1].produces = a;
    expectOnly(lintSemTrace(sem), "IR002");
}

TEST(TraceLint, AddrPoolOverrunIsIr003)
{
    SemKernelTrace sem = validSem();
    sem.warps[0].addrPool.resize(sem.warps[0].addrPool.size() - 8);
    expectOnly(lintSemTrace(sem), "IR003");
}

TEST(TraceLint, ConsumePoolOverrunIsIr004)
{
    SemKernelTrace sem = validSem();
    // Shrinking the pool breaks the last consume list's bounds. The
    // entries that remain still resolve, so IR001 stays quiet.
    SemWarpTrace &w = sem.warps[0];
    ASSERT_FALSE(w.consumePool.empty());
    w.consumePool.pop_back();
    expectOnly(lintSemTrace(sem), "IR004");
}

TEST(TraceLint, BadDistanceBeatCountIsIr005)
{
    SemKernelTrace sem = validSem();
    for (SemOp &op : sem.warps[0].ops) {
        if (op.kind == SemKind::Distance && op.dist.warpCooperative) {
            op.dist.chunkCount = 1; // dim=64 needs 2 coalesced chunks
            break;
        }
    }
    expectOnly(lintSemTrace(sem), "IR005");
}

TEST(TraceLint, DistanceShapeInconsistencyIsIr006)
{
    SemKernelTrace sem = validSem();
    for (SemOp &op : sem.warps[0].ops) {
        if (op.kind == SemKind::Distance && op.dist.warpCooperative) {
            op.activeMask = kFullMask; // disagrees with nCands=8
            break;
        }
    }
    expectOnly(lintSemTrace(sem), "IR006");
}

TEST(TraceLint, KeyCompareFanInIsIr007)
{
    SemKernelTrace sem = validSem();
    for (SemOp &op : sem.warps[0].ops) {
        if (op.kind == SemKind::KeyCompare && !op.laneProbe) {
            // 36 * 32 + 1 separators: one more chunk than lanes.
            op.nKeys = 36 * kWarpSize + 1;
            break;
        }
    }
    expectOnly(lintSemTrace(sem), "IR007");
}

TEST(TraceLint, EmptyActiveMaskIsIr008Warning)
{
    SemKernelTrace sem = validSem();
    for (SemOp &op : sem.warps[0].ops) {
        if (op.kind == SemKind::Alu) {
            op.activeMask = 0;
            break;
        }
    }
    const LintReport report = lintSemTrace(sem);
    expectOnly(report, "IR008");
    EXPECT_EQ(report.errorCount(), 0u);
    EXPECT_EQ(report.warningCount(), 1u);
}

TEST(TraceLint, BoxShapeMismatchIsIr009)
{
    SemKernelTrace sem = validSem();
    for (SemOp &op : sem.warps[0].ops) {
        if (op.kind == SemKind::BoxTest) {
            op.box.blChunks = 3; // 48B of baseline loads, 64B node
            break;
        }
    }
    expectOnly(lintSemTrace(sem), "IR009");
}

// --- Corrupted corpus: lowered-trace rules ---------------------------

TEST(TraceLint, LoweredCleanOnAllLowerings)
{
    const SemKernelTrace sem = validSem();
    for (const Lowering &low :
         {Lowering::baseline(), Lowering::hsu(), Lowering::partial(0.5)}) {
        const KernelTrace trace = lowerTrace(sem, low);
        const LintReport report = lintLoweredTrace(trace);
        EXPECT_TRUE(report.clean()) << report.str();
    }
}

TEST(TraceLint, UnresolvedScoreboardTokenIsLt001)
{
    KernelTrace trace = lowerTrace(validSem(), Lowering::hsu());
    // Wait on a token no op has produced yet at op 0.
    ASSERT_FALSE(trace.warps[0].ops.empty());
    trace.warps[0].ops[0].consumesMask = 0x8000;
    expectOnly(lintLoweredTrace(trace), "LT001");
}

TEST(TraceLint, BadOpShapeIsLt002)
{
    KernelTrace trace = lowerTrace(validSem(), Lowering::hsu());
    for (TraceOp &op : trace.warps[0].ops) {
        if (op.type == OpType::Alu) {
            op.count = 0;
            break;
        }
    }
    expectOnly(lintLoweredTrace(trace), "LT002");
}

TEST(TraceLint, LoweredAddrPoolOverrunIsLt003)
{
    KernelTrace trace = lowerTrace(validSem(), Lowering::hsu());
    trace.warps[0].addrPool.resize(trace.warps[0].addrPool.size() - 8);
    expectOnly(lintLoweredTrace(trace), "LT003");
}

TEST(TraceLint, MissingOriginStampIsLt004)
{
    KernelTrace trace = lowerTrace(validSem(), Lowering::hsu());
    for (TraceOp &op : trace.warps[0].ops) {
        if (op.type == OpType::HsuOp) {
            op.origin = TraceOrigin::Generic;
            break;
        }
    }
    expectOnly(lintLoweredTrace(trace), "LT004");
}

TEST(TraceLint, OriginOutOfRangeIsLt005)
{
    KernelTrace trace = lowerTrace(validSem(), Lowering::hsu());
    // A Generic pass-through op keeps LT004 (HSU-op stamps) quiet.
    for (TraceOp &op : trace.warps[0].ops) {
        if (op.type == OpType::Alu &&
            op.origin == TraceOrigin::Generic) {
            op.origin = static_cast<TraceOrigin>(7);
            break;
        }
    }
    expectOnly(lintLoweredTrace(trace), "LT005");
}

// --- Corrupted corpus: cross-lowering rules --------------------------

TEST(TraceLint, DroppedCiscOpIsXl001)
{
    const SemKernelTrace sem = validSem();
    KernelTrace trace = lowerTrace(sem, Lowering::hsu());
    auto &ops = trace.warps[0].ops;
    const auto it =
        std::find_if(ops.begin(), ops.end(), [](const TraceOp &op) {
            return op.type == OpType::HsuOp;
        });
    ASSERT_NE(it, ops.end());
    ops.erase(it);
    expectOnly(lintLoweringAccounting(sem, trace, Lowering::hsu()),
               "XL001");
}

TEST(TraceLint, ConservationHoldsForAllLowerings)
{
    const SemKernelTrace sem = validSem();
    for (const Lowering &low :
         {Lowering::baseline(), Lowering::hsu(), Lowering::partial(0.25),
          Lowering::partial(0.5), Lowering::partial(0.75),
          Lowering::partialByKind(
              Lowering::kindBit(SemKind::Distance) |
              Lowering::kindBit(SemKind::KeyCompare) |
              Lowering::kindBit(SemKind::BoxTest))}) {
        const LintReport report =
            lintLoweringAccounting(sem, lowerTrace(sem, low), low);
        EXPECT_TRUE(report.clean()) << report.str();
    }
}

TEST(TraceLint, UnbalancedOffloadMaskIsXl003)
{
    // A fully HSU-lowered trace claimed as a ByKind lowering whose
    // mask excludes Distance: the replay expects no Distance CISC ops
    // but the trace carries them.
    const SemKernelTrace sem = validSem();
    const KernelTrace trace = lowerTrace(sem, Lowering::hsu());
    const Lowering claimed = Lowering::partialByKind(
        Lowering::kindBit(SemKind::KeyCompare) |
        Lowering::kindBit(SemKind::BoxTest));
    expectOnly(lintLoweringAccounting(sem, trace, claimed), "XL003");
}

TEST(TraceLint, EndpointEquivalenceHolds)
{
    const LintReport report =
        lintEndpointEquivalence(validSem(), DatapathConfig{});
    EXPECT_TRUE(report.clean()) << report.str();
}

// --- Registry extensibility ------------------------------------------

TEST(TraceLint, RegisteredRuleRunsAndEntersCatalog)
{
    static bool registered = false;
    if (!registered) {
        registered = true;
        registerSemLintRule(
            LintRuleInfo{"XT900", LintSeverity::Error,
                         "test rule: no warp holds 10^9 ops",
                         "split the emission"},
            [](const SemLintContext &ctx, const LintRuleInfo &rule,
               LintReport &report) {
                for (std::size_t w = 0; w < ctx.sem.warps.size(); ++w) {
                    if (ctx.sem.warps[w].ops.size() >= 1000000000ull)
                        report.add(rule, w, 0, "implausible warp");
                }
            });
    }
    bool in_catalog = false;
    for (const LintRuleInfo &rule : lintRuleCatalog())
        in_catalog |= rule.id == "XT900";
    EXPECT_TRUE(in_catalog);
    EXPECT_TRUE(lintSemTrace(validSem()).clean());
}

TEST(TraceLint, CatalogCoversDocumentedRules)
{
    const char *expected[] = {"IR001", "IR002", "IR003", "IR004",
                              "IR005", "IR006", "IR007", "IR008",
                              "IR009", "LT001", "LT002", "LT003",
                              "LT004", "LT005", "XL001", "XL002",
                              "XL003"};
    const std::vector<LintRuleInfo> catalog = lintRuleCatalog();
    for (const char *id : expected) {
        const bool found =
            std::any_of(catalog.begin(), catalog.end(),
                        [id](const LintRuleInfo &r) { return r.id == id; });
        EXPECT_TRUE(found) << "missing rule " << id;
    }
    for (const LintRuleInfo &rule : catalog) {
        EXPECT_FALSE(rule.summary.empty()) << rule.id;
        EXPECT_FALSE(rule.fixit.empty()) << rule.id;
    }
}

// --- Golden workloads lint clean (all five kernels, three lowerings) -

TEST(TraceLintGolden, GgnnEuclid)
{
    const auto w = golden::ggnnEuclid();
    const HnswGraph g = HnswGraph::build(w.points, Metric::Euclidean);
    const GgnnKernel k(g, GgnnConfig{});
    const LintReport report = lintWorkload(k.emit(w.queries).sem);
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(TraceLintGolden, GgnnAngular)
{
    const auto w = golden::ggnnAngular();
    const HnswGraph g = HnswGraph::build(w.points, Metric::Angular);
    const GgnnKernel k(g, GgnnConfig{});
    const LintReport report = lintWorkload(k.emit(w.queries).sem);
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(TraceLintGolden, Flann)
{
    const auto w = golden::pointCloud();
    const KdTree tree = KdTree::build(w.points, 16);
    const FlannKernel k(tree);
    const LintReport report = lintWorkload(k.emit(w.queries).sem);
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(TraceLintGolden, Bvhnn)
{
    const auto w = golden::pointCloud();
    const Lbvh bvh = Lbvh::buildFromPoints(w.points, w.radius);
    const BvhnnKernel k(w.points, bvh, BvhnnConfig{w.radius});
    const LintReport report = lintWorkload(k.emit(w.queries).sem);
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(TraceLintGolden, Bvhnn4Wide)
{
    const auto w = golden::pointCloud();
    const Lbvh bvh = Lbvh::buildFromPoints(w.points, w.radius);
    BvhnnConfig cfg{w.radius};
    cfg.useBvh4 = true;
    const BvhnnKernel k(w.points, bvh, cfg);
    const LintReport report = lintWorkload(k.emit(w.queries).sem);
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(TraceLintGolden, Btree)
{
    auto w = golden::btreeKeys();
    const BTree tree = BTree::build(std::move(w.pairs), 256);
    const BtreeKernel k(tree);
    const LintReport report = lintWorkload(k.emit(w.probes).sem);
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(TraceLintGolden, Rtindex)
{
    const auto w = golden::rtindexKeys();
    const RtindexKernel k(w.keys);
    for (const RtindexForm form :
         {RtindexForm::Tri, RtindexForm::Native}) {
        const LintReport report =
            lintWorkload(k.emit(w.probes, form).sem);
        EXPECT_TRUE(report.clean()) << report.str();
    }
}

} // namespace
} // namespace hsu
