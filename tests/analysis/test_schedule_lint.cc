/**
 * @file
 * schedule_lint regression corpus: valid synthetic serve/cluster event
 * logs lint clean, then each log is corrupted one invariant at a time
 * and every corruption must trigger exactly its SV/SH/CH rule ID — no
 * more, no less — mirroring the trace_lint corpus discipline. The
 * fixed-function SH001/SH002 checks get their own corruption corpus
 * over plain partition/merge data.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/schedule_lint.hh"

namespace hsu
{
namespace
{

ScheduleEvent
ev(Cycle cycle, std::uint32_t lane, ScheduleEventKind kind,
   std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0)
{
    return ScheduleEvent{cycle, a, b, c, lane, kind};
}

using K = ScheduleEventKind;

/**
 * A hand-built single-lane serving schedule that satisfies every
 * SV/CH invariant: three queued admissions (one later expired), one
 * overload shed, a sealed/dispatched/resolved batch whose dispatch
 * order permutes the seal order, and an exact-key LRU cache at
 * capacity 2 going through miss/insert/hit/evict.
 */
ScheduleLog
validServeLog()
{
    constexpr std::uint32_t lane = 0;
    ScheduleLog log;
    auto &e = log.events;
    // highWater 4, shedWater 6, maxBatch 8; cache capacity 2.
    e.push_back(ev(0, lane, K::PipelineConfig, 4, 6, 8));
    e.push_back(ev(0, lane, K::CacheConfig, 2, kCacheExactOnly, 100));
    // Three queued arrivals (query ids 1..3), then one shed at the
    // recorded watermark depth.
    e.push_back(ev(100, lane, K::CacheMiss, 1, 1));
    e.push_back(ev(100, lane, K::Admit, 10, 1, kAdmitQueued | 0 << 2));
    e.push_back(ev(200, lane, K::CacheMiss, 2, 2));
    e.push_back(ev(200, lane, K::Admit, 11, 2, kAdmitQueued | 1 << 2));
    e.push_back(ev(300, lane, K::CacheMiss, 3, 3));
    e.push_back(ev(300, lane, K::Admit, 12, 3, kAdmitQueued | 2 << 2));
    e.push_back(ev(400, lane, K::CacheMiss, 4, 4));
    e.push_back(ev(400, lane, K::Admit, 13, 4, kAdmitShed | 6 << 2));
    // Batch 1 forms at cycle 1000 from depth 3: request 12's deadline
    // (900) already passed, 10 and 11 seal in FIFO order.
    e.push_back(ev(1000, lane, K::Expire, 12, 900));
    e.push_back(ev(1000, lane, K::BatchSeal, 1, 2, 0 | 3 << 1));
    e.push_back(ev(1000, lane, K::SealMember, 10, 10'000, 1));
    e.push_back(ev(1000, lane, K::SealMember, 11, 10'000, 1));
    // The ordering policy swapped the two members: allowed.
    e.push_back(ev(1000, lane, K::Dispatch, 1, 2, 0));
    e.push_back(ev(1000, lane, K::DispatchMember, 11, 2, 1));
    e.push_back(ev(1000, lane, K::DispatchMember, 10, 1, 1));
    e.push_back(ev(6000, lane, K::Resolve, 1, 4000, 6000));
    // Completion fills the cache; the third insert evicts key 2 (key 1
    // was refreshed by the hit in between).
    e.push_back(ev(6000, lane, K::CacheInsert, 1, 1, 0));
    e.push_back(ev(6000, lane, K::CacheInsert, 2, 2, 0));
    e.push_back(ev(7000, lane, K::CacheHit, 1, 1));
    e.push_back(ev(8000, lane, K::CacheInsert, 5, 5, 0));
    e.push_back(ev(8000, lane, K::CacheEvict, 2));
    return log;
}

/**
 * A hand-built 2-lane cluster schedule satisfying the SH invariants:
 * one request fanned out to both lanes over a 100/50-cycle link, lane
 * 0 serves it, lane 1 sheds it, and the join completes at
 * merge-ready + mergeCyclesPerShard x served.
 */
ScheduleLog
validClusterLog()
{
    constexpr std::uint32_t router = kRouterLane;
    ScheduleLog log;
    auto &e = log.events;
    // scatterHop 100, gatherHop 50, mergeCyclesPerShard 10.
    e.push_back(ev(0, router, K::ClusterConfig, 100, 50, 10));
    e.push_back(ev(0, 0, K::PipelineConfig, 4, 6, 8));
    e.push_back(ev(0, 1, K::PipelineConfig, 4, 6, 8));
    e.push_back(ev(1000, router, K::RouterRoute, 1, 7, 2));
    e.push_back(ev(1000, router, K::Scatter, 1, 0, 1100));
    e.push_back(ev(1000, router, K::Scatter, 1, 1, 1100));
    e.push_back(ev(1100, 0, K::Admit, 1, 7, kAdmitQueued | 0 << 2));
    e.push_back(ev(1100, 1, K::Admit, 1, 7, kAdmitShed | 6 << 2));
    e.push_back(ev(1100, router, K::SubShed, 1));
    e.push_back(ev(1200, 0, K::BatchSeal, 1, 1, 0 | 1 << 1));
    e.push_back(ev(1200, 0, K::SealMember, 1, kNeverCycle, 1));
    e.push_back(ev(1200, 0, K::Dispatch, 1, 1, 0));
    e.push_back(ev(1200, 0, K::DispatchMember, 1, 7, 1));
    e.push_back(ev(5000, 0, K::Resolve, 1, 3700, 5000));
    e.push_back(ev(5000, 0, K::Gather, 1, 5000, 5050));
    e.push_back(ev(5060, router, K::JoinDone, 1, 1, 1));
    return log;
}

/** The corruption fired its rule and nothing else (at error level). */
void
expectOnly(const LintReport &report, const char *rule_id)
{
    EXPECT_GT(report.countRule(rule_id), 0u)
        << "expected " << rule_id << ":\n"
        << report.str();
    EXPECT_EQ(report.errorCount() + report.warningCount(),
              report.countRule(rule_id))
        << "extra findings beyond " << rule_id << ":\n"
        << report.str();
}

/** The first event matching @p kind (asserts existence). */
ScheduleEvent &
firstOf(ScheduleLog &log, ScheduleEventKind kind)
{
    const auto it = std::find_if(
        log.events.begin(), log.events.end(),
        [kind](const ScheduleEvent &e) { return e.kind == kind; });
    EXPECT_NE(it, log.events.end());
    return *it;
}

TEST(ScheduleLint, ValidServeLogIsClean)
{
    const LintReport report = lintScheduleLog(validServeLog());
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(ScheduleLint, ValidClusterLogIsClean)
{
    const LintReport report = lintScheduleLog(validClusterLog());
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(ScheduleLint, EmptyLogIsClean)
{
    const LintReport report = lintScheduleLog(ScheduleLog{});
    EXPECT_TRUE(report.clean()) << report.str();
}

// --- SV corruption corpus --------------------------------------------

TEST(ScheduleLint, PhantomTerminationIsSv001)
{
    // An expiry for a request that was never queued on the lane.
    ScheduleLog log = validServeLog();
    log.events.push_back(ev(1000, 0, K::Expire, 99, 900));
    expectOnly(lintScheduleLog(log), "SV001");
}

TEST(ScheduleLint, LostRequestIsSv001)
{
    // A queued admission that never seals or expires.
    ScheduleLog log = validServeLog();
    log.events.push_back(
        ev(9000, 0, K::Admit, 99, 9, kAdmitQueued | 0 << 2));
    expectOnly(lintScheduleLog(log), "SV001");
}

TEST(ScheduleLint, DispatchMembershipDriftIsSv002)
{
    // The dispatched batch contains a request the seal never had:
    // the ordering policy must permute, never substitute.
    ScheduleLog log = validServeLog();
    firstOf(log, K::DispatchMember).a = 99;
    LintReport report = lintScheduleLog(log);
    EXPECT_GT(report.countRule("SV002"), 0u) << report.str();
}

TEST(ScheduleLint, DuplicateSealIsSv002)
{
    ScheduleLog log = validServeLog();
    log.events.push_back(ev(1000, 0, K::BatchSeal, 1, 2, 0 | 3 << 1));
    expectOnly(lintScheduleLog(log), "SV002");
}

TEST(ScheduleLint, ResolveBeforeDispatchIsSv003)
{
    ScheduleLog log = validServeLog();
    firstOf(log, K::Resolve).cycle = 500;
    expectOnly(lintScheduleLog(log), "SV003");
}

TEST(ScheduleLint, ExpiryOfLiveDeadlineIsSv003)
{
    // Expired at cycle 1000 although the deadline was 2000.
    ScheduleLog log = validServeLog();
    firstOf(log, K::Expire).b = 2000;
    expectOnly(lintScheduleLog(log), "SV003");
}

TEST(ScheduleLint, AdmissionOrderRegressionIsSv003)
{
    // A later-logged admission with an earlier cycle: arrivals must be
    // nondecreasing per lane.
    ScheduleLog log = validServeLog();
    log.events.push_back(
        ev(50, 0, K::Admit, 50, 5, kAdmitShed | 6 << 2));
    expectOnly(lintScheduleLog(log), "SV003");
}

TEST(ScheduleLint, ShedBelowWatermarkIsSv004)
{
    // The shed admission's sampled depth is under shedWater.
    ScheduleLog log = validServeLog();
    for (ScheduleEvent &e : log.events) {
        if (e.kind == K::Admit && (e.c & 3) == kAdmitShed)
            e.c = kAdmitShed | 2 << 2;
    }
    expectOnly(lintScheduleLog(log), "SV004");
}

TEST(ScheduleLint, DegradeBelowWatermarkIsSv004)
{
    // The batch claims degraded knobs at a depth under highWater.
    ScheduleLog log = validServeLog();
    firstOf(log, K::BatchSeal).c = 1 | 3 << 1;
    expectOnly(lintScheduleLog(log), "SV004");
}

// --- SH corruption corpus --------------------------------------------

TEST(ScheduleLint, UnbalancedJoinIsSh003)
{
    // Fan-out 2 but only one gather and no shed: a sub-query vanished.
    ScheduleLog log = validClusterLog();
    log.events.erase(std::remove_if(log.events.begin(),
                                    log.events.end(),
                                    [](const ScheduleEvent &e) {
                                        return e.kind == K::SubShed;
                                    }),
                     log.events.end());
    LintReport report = lintScheduleLog(log);
    EXPECT_GT(report.countRule("SH003"), 0u) << report.str();
}

TEST(ScheduleLint, MergeTimingDriftIsSh003)
{
    // The join completes one cycle before merge-ready + merge cost.
    ScheduleLog log = validClusterLog();
    firstOf(log, K::JoinDone).cycle = 5059;
    expectOnly(lintScheduleLog(log), "SH003");
}

TEST(ScheduleLint, JoinCountMismatchIsSh003)
{
    // The join under-reports its served sub-answers.
    ScheduleLog log = validClusterLog();
    firstOf(log, K::JoinDone).b = 0;
    expectOnly(lintScheduleLog(log), "SH003");
}

TEST(ScheduleLint, ScatterSkipsLinkLatencyIsSh004)
{
    // A scatter that delivers before paying the link hop.
    ScheduleLog log = validClusterLog();
    firstOf(log, K::Scatter).c = 1000;
    expectOnly(lintScheduleLog(log), "SH004");
}

TEST(ScheduleLint, GatherPrecedesScatterIsSh004)
{
    // Lane 0's sub-answer gathers although no sub-query was ever
    // scattered to lane 0.
    ScheduleLog log = validClusterLog();
    const auto it = std::find_if(
        log.events.begin(), log.events.end(),
        [](const ScheduleEvent &e) {
            return e.kind == K::Scatter && e.b == 0;
        });
    ASSERT_NE(it, log.events.end());
    // Keep SH003's fan-out accounting balanced while removing the hop.
    firstOf(log, K::RouterRoute).c = 2;
    it->b = 1; // rescatter to lane 1: lane 0 never sees the request
    LintReport report = lintScheduleLog(log);
    EXPECT_GT(report.countRule("SH004"), 0u) << report.str();
    EXPECT_EQ(report.countRule("SH003"), 0u) << report.str();
}

// --- CH corruption corpus --------------------------------------------

TEST(ScheduleLint, InexactCacheKeyIsCh001)
{
    // An exact-only cache whose recorded key differs from the id.
    ScheduleLog log = validServeLog();
    firstOf(log, K::CacheMiss).b = 99;
    expectOnly(lintScheduleLog(log), "CH001");
}

TEST(ScheduleLint, MissOnResidentKeyIsCh001)
{
    // A recorded miss for a key the insert/evict replay holds.
    ScheduleLog log = validServeLog();
    log.events.push_back(ev(6500, 0, K::CacheMiss, 1, 1));
    // Re-sort nothing: appended events replay after the inserts.
    expectOnly(lintScheduleLog(log), "CH001");
}

TEST(ScheduleLint, WrongInsertFlagIsCh001)
{
    // A fresh insert flagged as a recency refresh.
    ScheduleLog log = validServeLog();
    firstOf(log, K::CacheInsert).c = 1;
    expectOnly(lintScheduleLog(log), "CH001");
}

TEST(ScheduleLint, TolerantBtreeCacheIsCh002)
{
    ScheduleLog log;
    log.events.push_back(ev(
        0, 0, K::CacheConfig, 4, kCacheBtree | kCacheTolerantMode,
        100));
    expectOnly(lintScheduleLog(log), "CH002");
}

TEST(ScheduleLint, EvictionOutOfLruOrderIsCh003)
{
    // The eviction takes the most-recently-used key instead of the LRU
    // tail.
    ScheduleLog log = validServeLog();
    firstOf(log, K::CacheEvict).a = 1;
    expectOnly(lintScheduleLog(log), "CH003");
}

TEST(ScheduleLint, EvictionWithinCapacityIsCh003)
{
    // An eviction while the cache still has room.
    ScheduleLog log = validServeLog();
    log.events.push_back(ev(9000, 0, K::CacheEvict, 1));
    expectOnly(lintScheduleLog(log), "CH003");
}

// --- SH001/SH002 fixed functions -------------------------------------

TEST(ScheduleLint, PartitionCoverageCleanOnExactSplit)
{
    const LintReport report =
        lintPartitionCoverage({{0, 2}, {1, 3}}, 4);
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(ScheduleLint, DuplicateAssignmentIsSh001)
{
    expectOnly(lintPartitionCoverage({{0, 1}, {1, 2}}, 3), "SH001");
}

TEST(ScheduleLint, UncoveredElementIsSh001)
{
    expectOnly(lintPartitionCoverage({{0}, {2}}, 3), "SH001");
}

TEST(ScheduleLint, OutOfRangeElementIsSh001)
{
    expectOnly(lintPartitionCoverage({{0, 1}, {2, 7}}, 3), "SH001");
}

TEST(ScheduleLint, MergeOrderCleanOnSortedUnique)
{
    const LintReport report = lintMergeOrder(
        {{0.5, 3}, {0.5, 9}, {1.25, 1}}, 10);
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(ScheduleLint, UnsortedMergeIsSh002)
{
    expectOnly(lintMergeOrder({{1.0, 3}, {0.5, 9}}, 10), "SH002");
}

TEST(ScheduleLint, DuplicateGlobalIdIsSh002)
{
    expectOnly(lintMergeOrder({{0.5, 3}, {1.0, 3}}, 10), "SH002");
}

TEST(ScheduleLint, OverlongMergeIsSh002)
{
    expectOnly(lintMergeOrder({{0.5, 3}, {1.0, 4}, {2.0, 5}}, 2),
               "SH002");
}

// --- Registry / catalog ----------------------------------------------

TEST(ScheduleLint, CatalogCoversAllRuleFamilies)
{
    const std::vector<LintRuleInfo> catalog =
        scheduleLintRuleCatalog();
    const char *expected[] = {"SV001", "SV002", "SV003", "SV004",
                              "SH001", "SH002", "SH003", "SH004",
                              "CH001", "CH002", "CH003"};
    for (const char *id : expected) {
        const bool found = std::any_of(
            catalog.begin(), catalog.end(),
            [id](const LintRuleInfo &r) { return r.id == id; });
        EXPECT_TRUE(found) << "catalog is missing " << id;
    }
    for (const LintRuleInfo &rule : catalog) {
        EXPECT_FALSE(rule.summary.empty()) << rule.id;
        EXPECT_FALSE(rule.fixit.empty()) << rule.id;
    }
}

TEST(ScheduleLint, RegisteredRuleRunsAndEntersCatalog)
{
    LintRuleInfo info;
    info.id = "SVT99";
    info.severity = LintSeverity::Warning;
    info.summary = "test rule: flags every Admit event";
    info.fixit = "test only";
    registerScheduleLintRule(
        info, [](const ScheduleLintContext &ctx,
                 const LintRuleInfo &rule, LintReport &report) {
            for (std::size_t i = 0; i < ctx.log.events.size(); ++i) {
                if (ctx.log.events[i].kind == K::Admit) {
                    report.add(rule, ctx.log.events[i].lane, i,
                               "admit seen");
                }
            }
        });

    const std::vector<LintRuleInfo> catalog =
        scheduleLintRuleCatalog();
    EXPECT_TRUE(std::any_of(
        catalog.begin(), catalog.end(),
        [](const LintRuleInfo &r) { return r.id == "SVT99"; }));

    const LintReport report = lintScheduleLog(validServeLog());
    EXPECT_EQ(report.countRule("SVT99"), 4u) << report.str();
    EXPECT_EQ(report.errorCount(), 0u) << report.str();
}

} // namespace
} // namespace hsu
