/**
 * @file
 * Shared helpers for the test suite: trace well-formedness checking and
 * small deterministic data generators.
 */

#ifndef HSU_TESTS_TEST_UTIL_HH
#define HSU_TESTS_TEST_UTIL_HH

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/trace.hh"
#include "structures/kdtree.hh"
#include "structures/pointset.hh"

namespace hsu::test
{

/** Structural well-formedness of a warp trace. */
inline bool
traceWellFormed(const WarpTrace &wt, std::string *why = nullptr)
{
    auto fail = [why](const char *msg) {
        if (why)
            *why = msg;
        return false;
    };
    for (const TraceOp &op : wt.ops) {
        if (op.count < 1)
            return fail("op with zero count");
        if (op.produces != kNoToken && op.produces >= 16)
            return fail("token id out of range");
        switch (op.type) {
          case OpType::Load:
          case OpType::Store:
          case OpType::HsuOp:
            if (op.activeMask == 0)
                return fail("memory op with empty mask");
            if (op.bytesPerLane == 0)
                return fail("memory op with zero bytes");
            if (op.addr.poolIndex >= 0 &&
                static_cast<std::size_t>(op.addr.poolIndex) +
                        kWarpSize >
                    wt.addrPool.size()) {
                return fail("pool index out of range");
            }
            break;
          default:
            break;
        }
    }
    return true;
}

/** Every warp of a kernel trace is well formed. */
inline bool
traceWellFormed(const KernelTrace &kt)
{
    for (const auto &w : kt.warps) {
        if (!traceWellFormed(w))
            return false;
    }
    return true;
}

/** Count ops of a type across a kernel trace. */
inline std::size_t
countOps(const KernelTrace &kt, OpType type)
{
    std::size_t n = 0;
    for (const auto &w : kt.warps) {
        for (const auto &op : w.ops) {
            if (op.type == type)
                ++n;
        }
    }
    return n;
}

/** Uniform random point cloud. */
inline PointSet
randomCloud(std::size_t n, unsigned dim, std::uint64_t seed)
{
    PointSet pts(dim);
    pts.reserve(n);
    Rng rng(seed);
    std::vector<float> p(dim);
    for (std::size_t i = 0; i < n; ++i) {
        for (auto &x : p)
            x = rng.uniform(-10.0f, 10.0f);
        pts.add(p.data());
    }
    return pts;
}

/** Brute-force k nearest neighbors (squared Euclidean). */
inline std::vector<Neighbor>
bruteKnn(const PointSet &pts, const float *q, unsigned k)
{
    std::vector<Neighbor> all;
    all.reserve(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        all.push_back({static_cast<std::uint32_t>(i),
                       pointDist2(q, pts[i], pts.dim())});
    }
    std::sort(all.begin(), all.end());
    if (all.size() > k)
        all.resize(k);
    return all;
}

} // namespace hsu::test

#endif // HSU_TESTS_TEST_UTIL_HH
